#include "distill/join_distiller.h"

#include <algorithm>
#include <cmath>

#include "sql/exec/aggregate.h"
#include "sql/exec/basic.h"
#include "sql/exec/batch_ops.h"
#include "sql/exec/cost_model.h"
#include "sql/exec/join.h"
#include "sql/exec/scan.h"
#include "sql/exec/external_sort.h"
#include "sql/exec/sort.h"
#include "storage/page.h"
#include "util/clock.h"

namespace focus::distill {

using sql::AggKind;
using sql::AggSpec;
using sql::Collect;
using sql::Filter;
using sql::HashAggregate;
using sql::HashJoin;
using sql::MergeJoin;
using sql::OperatorPtr;
using sql::ProjExpr;
using sql::Project;
using sql::ExternalSort;
using sql::SeqScan;
using sql::SortKey;
using sql::Tuple;
using sql::TypeId;
using sql::Value;

namespace {
// LINK rows with sid_src <> sid_dst (the nepotism filter). `plan` may be
// null (no instrumentation).
OperatorPtr OffServerLinks(const sql::Table* link, sql::PlanStats* plan) {
  return sql::Analyze(
      plan, "Filter sid_src<>sid_dst",
      std::make_unique<Filter>(
          sql::Analyze(plan, "SeqScan LINK", std::make_unique<SeqScan>(link)),
          [](const Tuple& t) {
            return t.Get(1).AsInt32() != t.Get(3).AsInt32();
          }));
}

// The batch-engine counterpart. LINK: 0 oid_src, 1 sid_src, 2 oid_dst,
// 3 sid_dst, 4 wgt_fwd, 5 wgt_rev. When `disp` is non-null the scan and
// filter run morsel-parallel (bit-identical selection order).
sql::BatchOperatorPtr BatchOffServerLinks(const sql::Table* link,
                                          sql::PlanStats* plan,
                                          sql::MorselDispatcher* disp) {
  const bool par = disp != nullptr;
  auto pred = [](const sql::Batch& in, std::vector<int64_t>* sel) {
    const auto& src = in.col(1).i32;
    const auto& dst = in.col(3).i32;
    for (size_t i = 0; i < src.size(); ++i) {
      if (src[i] != dst[i]) sel->push_back(static_cast<int64_t>(i));
    }
  };
  sql::BatchOperatorPtr scan = sql::AnalyzeBatch(
      plan, par ? "ParallelTableScan LINK" : "BatchTableScan LINK",
      par ? sql::BatchOperatorPtr(
                std::make_unique<sql::ParallelTableScan>(link, disp))
          : sql::BatchOperatorPtr(
                std::make_unique<sql::BatchTableScan>(link)));
  return sql::AnalyzeBatch(
      plan,
      par ? "ParallelFilter sid_src<>sid_dst" : "BatchFilter sid_src<>sid_dst",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelFilter>(
                std::move(scan), pred, disp))
          : sql::BatchOperatorPtr(std::make_unique<sql::BatchFilter>(
                std::move(scan), pred)));
}
}  // namespace

sql::MorselDispatcher* JoinDistiller::dispatcher() {
  if (dispatcher_ == nullptr) {
    dispatcher_ = std::make_unique<sql::MorselDispatcher>(parallel_threads_);
  }
  return dispatcher_.get();
}

Status JoinDistiller::Initialize() {
  crawl_oid_col_ = tables_.crawl->schema().ColumnIndex("oid");
  crawl_rel_col_ = tables_.crawl->schema().ColumnIndex("relevance");
  if (crawl_oid_col_ < 0 || crawl_rel_col_ < 0) {
    return Status::InvalidArgument(
        "crawl table must have oid and relevance columns");
  }
  Stopwatch join_timer;
  // Distinct sources in ascending order, via group-by over LINK.
  HashAggregate distinct_srcs(
      std::make_unique<SeqScan>(tables_.link), std::vector<int>{0},
      std::vector<AggSpec>{AggSpec{AggKind::kCount, -1, "cnt"}});
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> srcs, Collect(&distinct_srcs));
  stats_.join_seconds += join_timer.ElapsedSeconds();

  Stopwatch update_timer;
  FOCUS_RETURN_IF_ERROR(tables_.hubs->Clear());
  FOCUS_RETURN_IF_ERROR(tables_.auth->Clear());
  for (const Tuple& row : srcs) {
    FOCUS_RETURN_IF_ERROR(
        tables_.hubs->Insert(Tuple({row.Get(0), Value::Double(1.0)}))
            .status());
  }
  stats_.update_seconds += update_timer.ElapsedSeconds();
  return AuditDanglingEdges();
}

Status JoinDistiller::AuditDanglingEdges() {
  // A crawl that purges exhausted URL rows (or recovers from a crash that
  // lost the tail of a batch) leaves LINK edges whose endpoint has no
  // CRAWL row. The Figure 4 joins drop those edges silently; this pass
  // makes the loss visible. One LINK scan with memoized by_oid probes.
  stats_.dangling_src_edges = 0;
  stats_.dangling_dst_edges = 0;
  int by_oid = tables_.crawl->IndexId("by_oid");
  if (by_oid < 0) return Status::OK();  // contract violation; stay silent
  Stopwatch scan_timer;
  std::unordered_map<int64_t, bool> known;
  auto in_crawl = [&](int64_t oid) -> Result<bool> {
    auto it = known.find(oid);
    if (it != known.end()) return it->second;
    std::vector<storage::Rid> rids;
    FOCUS_RETURN_IF_ERROR(
        tables_.crawl->IndexLookup(by_oid, {Value::Int64(oid)}, &rids));
    return known.emplace(oid, !rids.empty()).first->second;
  };
  auto it = tables_.link->Scan();
  storage::Rid rid;
  Tuple row;
  while (it.Next(&rid, &row)) {
    FOCUS_ASSIGN_OR_RETURN(bool src_known, in_crawl(row.Get(0).AsInt64()));
    FOCUS_ASSIGN_OR_RETURN(bool dst_known, in_crawl(row.Get(2).AsInt64()));
    if (!src_known) ++stats_.dangling_src_edges;
    if (!dst_known) ++stats_.dangling_dst_edges;
  }
  FOCUS_RETURN_IF_ERROR(it.status());
  stats_.scan_seconds += scan_timer.ElapsedSeconds();
  return Status::OK();
}

Status JoinDistiller::ReplaceNormalized(sql::Table* table,
                                        const std::vector<Tuple>& rows) {
  Stopwatch timer;
  double total = 0;
  for (const Tuple& row : rows) {
    double score = row.Get(1).AsNumeric();
    if (std::isfinite(score)) total += score;
  }
  FOCUS_RETURN_IF_ERROR(table->Clear());
  for (const Tuple& row : rows) {
    double score = row.Get(1).AsNumeric();
    // A non-finite contribution (corrupt weight, overflow) is clamped to
    // 0 and counted rather than allowed to turn the entire normalized
    // vector into NaN.
    if (!std::isfinite(score)) {
      ++stats_.nonfinite_scores;
      score = 0;
    } else if (total > 0) {
      score /= total;
    }
    FOCUS_RETURN_IF_ERROR(
        table->Insert(Tuple({row.Get(0), Value::Double(score)})).status());
  }
  stats_.update_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

Status JoinDistiller::UpdateAuth(double rho) {
  Stopwatch join_timer;
  // Relevant pages: select oid from CRAWL where relevance > rho.
  int rel_col = crawl_rel_col_;
  int oid_col = crawl_oid_col_;
  OperatorPtr relevant = sql::Analyze(
      plan_, "Project oid",
      std::make_unique<Project>(
          sql::Analyze(
              plan_, "Filter relevance>rho",
              std::make_unique<Filter>(
                  sql::Analyze(plan_, "SeqScan CRAWL",
                               std::make_unique<SeqScan>(tables_.crawl)),
                  [rel_col, rho](const Tuple& t) {
                    return t.Get(rel_col).AsDouble() > rho;
                  })),
          std::vector<ProjExpr>{ProjExpr{"oid", TypeId::kInt64,
                                         [oid_col](const Tuple& t) {
                                           return t.Get(oid_col);
                                         }}}));
  // Eligible links: off-server links whose destination is relevant.
  OperatorPtr eligible = sql::Analyze(
      plan_, "HashJoin relevant~LINK",
      std::make_unique<HashJoin>(std::move(relevant),
                                 OffServerLinks(tables_.link, plan_),
                                 std::vector<int>{0}, std::vector<int>{2}));
  // eligible: 0 oid, 1 oid_src, 2 sid_src, 3 oid_dst, 4 sid_dst,
  //           5 wgt_fwd, 6 wgt_rev
  // External sort: spills through the same buffer pool when the eligible
  // link set outgrows the memory budget, as DB2's sort would.
  OperatorPtr by_src = sql::Analyze(
      plan_, "ExternalSort by oid_src",
      std::make_unique<ExternalSort>(std::move(eligible),
                                     std::vector<SortKey>{{1, false}},
                                     tables_.link->buffer_pool()));
  // HUBS is maintained in ascending-oid heap order: merge join directly.
  OperatorPtr with_hub = sql::Analyze(
      plan_, "MergeJoin links~HUBS",
      std::make_unique<MergeJoin>(
          std::move(by_src),
          sql::Analyze(plan_, "SeqScan HUBS",
                       std::make_unique<SeqScan>(tables_.hubs)),
          std::vector<int>{1}, std::vector<int>{0}));
  // with_hub: ..., 7 oid(hub), 8 score
  OperatorPtr contrib = sql::Analyze(
      plan_, "Project oid_dst,score*wgt_fwd",
      std::make_unique<Project>(
          std::move(with_hub),
          std::vector<ProjExpr>{
              ProjExpr{"oid_dst", TypeId::kInt64,
                       [](const Tuple& t) { return t.Get(3); }},
              ProjExpr{"w", TypeId::kDouble,
                       [](const Tuple& t) {
                         return Value::Double(t.Get(8).AsDouble() *
                                              t.Get(5).AsDouble());
                       }}}));
  OperatorPtr agg = sql::Analyze(
      plan_, "UpdateAuth: HashAggregate(oid_dst, sum)",
      std::make_unique<HashAggregate>(
          std::move(contrib), std::vector<int>{0},
          std::vector<AggSpec>{AggSpec{AggKind::kSum, 1, "score"}}));
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Collect(agg.get()));
  stats_.join_seconds += join_timer.ElapsedSeconds();
  return ReplaceNormalized(tables_.auth, rows);
}

Status JoinDistiller::UpdateHubs() {
  Stopwatch join_timer;
  OperatorPtr by_dst = sql::Analyze(
      plan_, "ExternalSort by oid_dst",
      std::make_unique<ExternalSort>(OffServerLinks(tables_.link, plan_),
                                     std::vector<SortKey>{{2, false}},
                                     tables_.link->buffer_pool()));
  // AUTH is in ascending-oid heap order (ReplaceNormalized preserved the
  // aggregate's order).
  OperatorPtr with_auth = sql::Analyze(
      plan_, "MergeJoin links~AUTH",
      std::make_unique<MergeJoin>(
          std::move(by_dst),
          sql::Analyze(plan_, "SeqScan AUTH",
                       std::make_unique<SeqScan>(tables_.auth)),
          std::vector<int>{2}, std::vector<int>{0}));
  // with_auth: 0 oid_src .. 5 wgt_rev, 6 oid(auth), 7 score
  OperatorPtr contrib = sql::Analyze(
      plan_, "Project oid_src,score*wgt_rev",
      std::make_unique<Project>(
          std::move(with_auth),
          std::vector<ProjExpr>{
              ProjExpr{"oid_src", TypeId::kInt64,
                       [](const Tuple& t) { return t.Get(0); }},
              ProjExpr{"w", TypeId::kDouble,
                       [](const Tuple& t) {
                         return Value::Double(t.Get(7).AsDouble() *
                                              t.Get(5).AsDouble());
                       }}}));
  OperatorPtr agg = sql::Analyze(
      plan_, "UpdateHubs: HashAggregate(oid_src, sum)",
      std::make_unique<HashAggregate>(
          std::move(contrib), std::vector<int>{0},
          std::vector<AggSpec>{AggSpec{AggKind::kSum, 1, "score"}}));
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Collect(agg.get()));
  stats_.join_seconds += join_timer.ElapsedSeconds();
  return ReplaceNormalized(tables_.hubs, rows);
}

Status JoinDistiller::UpdateAuthVec(double rho) {
  Stopwatch join_timer;
  const bool par = engine_ == sql::ExecEngine::kParallel;
  const bool enc = engine_ == sql::ExecEngine::kEncoded;
  sql::MorselDispatcher* disp = par ? dispatcher() : nullptr;
  // Relevant pages, pruned at the scan: CRAWL carries URL strings the
  // plan never reads, so the batch scan copies only (oid, relevance).
  int rel_col = crawl_rel_col_;
  int oid_col = crawl_oid_col_;
  auto rel_pred = [rho](const sql::Batch& in, std::vector<int64_t>* sel) {
    const auto& rel = in.col(1).f64;
    for (size_t i = 0; i < rel.size(); ++i) {
      if (rel[i] > rho) sel->push_back(static_cast<int64_t>(i));
    }
  };
  sql::BatchOperatorPtr crawl_scan = sql::AnalyzeBatch(
      plan_,
      par ? "ParallelTableScan CRAWL(oid,relevance)"
          : "BatchTableScan CRAWL(oid,relevance)",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelTableScan>(
                tables_.crawl, disp, std::vector<int>{oid_col, rel_col}))
          : sql::BatchOperatorPtr(std::make_unique<sql::BatchTableScan>(
                tables_.crawl, std::vector<int>{oid_col, rel_col})));
  sql::BatchOperatorPtr filtered = sql::AnalyzeBatch(
      plan_, par ? "ParallelFilter relevance>rho" : "BatchFilter relevance>rho",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelFilter>(
                std::move(crawl_scan), rel_pred, disp))
          : sql::BatchOperatorPtr(std::make_unique<sql::BatchFilter>(
                std::move(crawl_scan), rel_pred)));
  std::vector<sql::BatchExpr> oid_exprs;
  oid_exprs.push_back(sql::BatchExpr::Passthrough("oid", TypeId::kInt64, 0));
  sql::BatchOperatorPtr projected = sql::AnalyzeBatch(
      plan_, par ? "ParallelProject oid" : "BatchProject oid",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelProject>(
                std::move(filtered), std::move(oid_exprs), disp))
          : sql::BatchOperatorPtr(std::make_unique<sql::BatchProject>(
                std::move(filtered), std::move(oid_exprs))));
  // The parallel merge join fuses its inputs' sorts into the radix
  // partition + per-partition stable sort (the same permutation), so the
  // explicit sort nodes only exist in the serial plan.
  sql::BatchOperatorPtr relevant =
      par ? std::move(projected)
          : sql::AnalyzeBatch(plan_, "BatchSort relevant by oid",
                              std::make_unique<sql::BatchSort>(
                                  std::move(projected),
                                  std::vector<SortKey>{{0, false}}));
  sql::BatchOperatorPtr links = BatchOffServerLinks(tables_.link, plan_, disp);
  sql::BatchOperatorPtr links_sorted =
      par ? std::move(links)
          : sql::AnalyzeBatch(plan_, "BatchSort by oid_dst",
                              std::make_unique<sql::BatchSort>(
                                  std::move(links),
                                  std::vector<SortKey>{{2, false}}));
  // Eligible links: off-server links whose destination is relevant, via
  // merge join on oid_dst.
  //
  // kEncoded materializes the relevant oids (the sorted domain of the
  // restriction — CRAWL oids are unique, so each link matches at most
  // once) and lets the cost model choose: an index-probe semi-join
  // (binary-search membership filter over the domain, dropping the
  // redundant oid(relevant) column) or the same merge join. Both emit
  // the surviving links in identical order; `score_idx` below absorbs
  // the one-column schema difference.
  sql::ColumnSet rel_cols;  // must outlive the plan (BatchSource borrows)
  sql::BatchOperatorPtr eligible;
  int score_idx = 8;
  if (enc) {
    FOCUS_RETURN_IF_ERROR(sql::CollectInto(relevant.get(), &rel_cols));
    sql::JoinStats js;
    js.left_rows = static_cast<uint64_t>(tables_.link->num_rows());
    js.left_distinct = static_cast<uint64_t>(tables_.crawl->num_rows());
    js.right_rows = static_cast<uint64_t>(rel_cols.num_rows());
    js.right_distinct = js.right_rows;
    js.right_bytes = js.right_rows * 8;
    js.buffer_bytes = static_cast<uint64_t>(
                          tables_.link->buffer_pool()->num_frames()) *
                      storage::kPageSize;
    sql::PathChoice choice = sql::ChooseJoinPath(js);
    sql::RecordPathChoice("distill.relevant", choice);
    sql::BatchOperatorPtr node_op;
    if (choice.path == sql::AccessPath::kIndexProbe) {
      node_op = std::make_unique<sql::BatchFilter>(
          std::move(links_sorted),
          sql::DomainMembershipPredicate(2, rel_cols.col_ptr(0)));
      score_idx = 7;
    } else {
      node_op = std::make_unique<sql::BatchMergeJoin>(
          std::move(links_sorted),
          std::make_unique<sql::BatchSource>(&rel_cols),
          std::vector<int>{2}, std::vector<int>{0});
    }
    eligible = sql::AnalyzeBatchCost(
        plan_, "EncJoin LINK~relevant",
        sql::CountActualRows("distill.relevant", std::move(node_op)),
        sql::AccessPathName(choice.path), choice.est_rows);
  } else {
    eligible = sql::AnalyzeBatch(
        plan_,
        par ? "ParallelMergeJoin LINK~relevant"
            : "BatchMergeJoin LINK~relevant",
        par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelMergeJoin>(
                  std::move(links_sorted), std::move(relevant),
                  std::vector<int>{2}, std::vector<int>{0}, disp))
            : sql::BatchOperatorPtr(std::make_unique<sql::BatchMergeJoin>(
                  std::move(links_sorted), std::move(relevant),
                  std::vector<int>{2}, std::vector<int>{0})));
  }
  // eligible: 0 oid_src, 1 sid_src, 2 oid_dst, 3 sid_dst, 4 wgt_fwd,
  //           5 wgt_rev [, 6 oid(relevant) unless the semi-join dropped it]
  sql::BatchOperatorPtr by_src =
      par ? std::move(eligible)
          : sql::AnalyzeBatch(plan_, "BatchSort by oid_src",
                              std::make_unique<sql::BatchSort>(
                                  std::move(eligible),
                                  std::vector<SortKey>{{0, false}}));
  // HUBS is maintained in ascending-oid heap order: merge join directly
  // (a stable re-sort of sorted input is the identity permutation).
  sql::BatchOperatorPtr hubs_scan = sql::AnalyzeBatch(
      plan_, par ? "ParallelTableScan HUBS" : "BatchTableScan HUBS",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelTableScan>(
                tables_.hubs, disp))
          : sql::BatchOperatorPtr(
                std::make_unique<sql::BatchTableScan>(tables_.hubs)));
  sql::BatchOperatorPtr with_hub;
  if (enc) {
    // Cascaded estimate: the relevant node's output estimate is this
    // node's outer cardinality. HUBS is tiny and ascending-oid; probe
    // vs merge flips with the eligible-link volume.
    sql::JoinStats js;
    js.left_rows = std::max<uint64_t>(
        sql::EstimateJoinRows([&] {
          sql::JoinStats rel;
          rel.left_rows = static_cast<uint64_t>(tables_.link->num_rows());
          rel.left_distinct =
              static_cast<uint64_t>(tables_.crawl->num_rows());
          rel.right_rows = static_cast<uint64_t>(rel_cols.num_rows());
          rel.right_distinct = rel.right_rows;
          return rel;
        }()),
        1);
    js.left_distinct = static_cast<uint64_t>(tables_.crawl->num_rows());
    js.right_rows = static_cast<uint64_t>(tables_.hubs->num_rows());
    js.right_distinct = js.right_rows;
    js.right_bytes = js.right_rows * 16;
    js.buffer_bytes = static_cast<uint64_t>(
                          tables_.hubs->buffer_pool()->num_frames()) *
                      storage::kPageSize;
    sql::PathChoice choice = sql::ChooseJoinPath(js);
    sql::RecordPathChoice("distill.hubs", choice);
    sql::BatchOperatorPtr node_op =
        choice.path == sql::AccessPath::kIndexProbe
            ? sql::BatchOperatorPtr(std::make_unique<sql::BatchProbeJoin>(
                  std::move(by_src), std::move(hubs_scan), 0, 0))
            : sql::BatchOperatorPtr(std::make_unique<sql::BatchMergeJoin>(
                  std::move(by_src), std::move(hubs_scan),
                  std::vector<int>{0}, std::vector<int>{0}));
    with_hub = sql::AnalyzeBatchCost(
        plan_, "EncJoin links~HUBS",
        sql::CountActualRows("distill.hubs", std::move(node_op)),
        sql::AccessPathName(choice.path), choice.est_rows);
  } else {
    with_hub = sql::AnalyzeBatch(
        plan_,
        par ? "ParallelMergeJoin links~HUBS" : "BatchMergeJoin links~HUBS",
        par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelMergeJoin>(
                  std::move(by_src), std::move(hubs_scan),
                  std::vector<int>{0}, std::vector<int>{0}, disp))
            : sql::BatchOperatorPtr(std::make_unique<sql::BatchMergeJoin>(
                  std::move(by_src), std::move(hubs_scan),
                  std::vector<int>{0}, std::vector<int>{0})));
  }
  // with_hub: ..., oid(hub), score at score_idx (7 after the semi-join
  // dropped oid(relevant), 8 otherwise)
  std::vector<sql::BatchExpr> contrib_exprs;
  contrib_exprs.push_back(
      sql::BatchExpr::Passthrough("oid_dst", TypeId::kInt64, 2));
  contrib_exprs.push_back(
      sql::BatchExpr{"w", TypeId::kDouble,
                     [score_idx](const sql::Batch& in) {
                       const auto& wgt = in.col(4).f64;
                       const auto& score = in.col(score_idx).f64;
                       sql::ColumnPtr out = sql::NewColumn(TypeId::kDouble);
                       out->f64.reserve(wgt.size());
                       for (size_t i = 0; i < wgt.size(); ++i) {
                         out->f64.push_back(score[i] * wgt[i]);
                       }
                       return out;
                     }});
  sql::BatchOperatorPtr contrib = sql::AnalyzeBatch(
      plan_,
      par ? "ParallelProject oid_dst,score*wgt_fwd"
          : "BatchProject oid_dst,score*wgt_fwd",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelProject>(
                std::move(with_hub), std::move(contrib_exprs), disp))
          : sql::BatchOperatorPtr(std::make_unique<sql::BatchProject>(
                std::move(with_hub), std::move(contrib_exprs))));
  // Sorting (stably) by oid_dst keeps the oid_src arrival order within
  // each group, so the sum order matches the scalar plan's.
  sql::BatchOperatorPtr agg = sql::AnalyzeBatch(
      plan_,
      par ? "UpdateAuth: ParallelSortAggregate(oid_dst, sum)"
          : "UpdateAuth: BatchSortAggregate(oid_dst, sum)",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelSortAggregate>(
                std::move(contrib), std::vector<SortKey>{{0, false}},
                std::vector<int>{0},
                std::vector<AggSpec>{AggSpec{AggKind::kSum, 1, "score"}},
                disp))
          : sql::BatchOperatorPtr(std::make_unique<sql::BatchSortAggregate>(
                std::move(contrib), std::vector<SortKey>{{0, false}},
                std::vector<int>{0},
                std::vector<AggSpec>{AggSpec{AggKind::kSum, 1, "score"}})));
  sql::Devectorize tail(std::move(agg));
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Collect(&tail));
  stats_.join_seconds += join_timer.ElapsedSeconds();
  return ReplaceNormalized(tables_.auth, rows);
}

Status JoinDistiller::UpdateHubsVec() {
  Stopwatch join_timer;
  const bool par = engine_ == sql::ExecEngine::kParallel;
  const bool enc = engine_ == sql::ExecEngine::kEncoded;
  sql::MorselDispatcher* disp = par ? dispatcher() : nullptr;
  sql::BatchOperatorPtr links = BatchOffServerLinks(tables_.link, plan_, disp);
  // The parallel merge join sorts internally, so the explicit sort node
  // only exists in the serial plan.
  sql::BatchOperatorPtr by_dst =
      par ? std::move(links)
          : sql::AnalyzeBatch(plan_, "BatchSort by oid_dst",
                              std::make_unique<sql::BatchSort>(
                                  std::move(links),
                                  std::vector<SortKey>{{2, false}}));
  // AUTH is in ascending-oid heap order (ReplaceNormalized preserved the
  // aggregate's order).
  sql::BatchOperatorPtr auth_scan = sql::AnalyzeBatch(
      plan_, par ? "ParallelTableScan AUTH" : "BatchTableScan AUTH",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelTableScan>(
                tables_.auth, disp))
          : sql::BatchOperatorPtr(
                std::make_unique<sql::BatchTableScan>(tables_.auth)));
  sql::BatchOperatorPtr with_auth;
  if (enc) {
    sql::JoinStats js;
    js.left_rows = static_cast<uint64_t>(tables_.link->num_rows());
    js.left_distinct = static_cast<uint64_t>(tables_.crawl->num_rows());
    js.right_rows = static_cast<uint64_t>(tables_.auth->num_rows());
    js.right_distinct = js.right_rows;
    js.right_bytes = js.right_rows * 16;
    js.buffer_bytes = static_cast<uint64_t>(
                          tables_.auth->buffer_pool()->num_frames()) *
                      storage::kPageSize;
    sql::PathChoice choice = sql::ChooseJoinPath(js);
    sql::RecordPathChoice("distill.auth", choice);
    sql::BatchOperatorPtr node_op =
        choice.path == sql::AccessPath::kIndexProbe
            ? sql::BatchOperatorPtr(std::make_unique<sql::BatchProbeJoin>(
                  std::move(by_dst), std::move(auth_scan), 2, 0))
            : sql::BatchOperatorPtr(std::make_unique<sql::BatchMergeJoin>(
                  std::move(by_dst), std::move(auth_scan),
                  std::vector<int>{2}, std::vector<int>{0}));
    with_auth = sql::AnalyzeBatchCost(
        plan_, "EncJoin links~AUTH",
        sql::CountActualRows("distill.auth", std::move(node_op)),
        sql::AccessPathName(choice.path), choice.est_rows);
  } else {
    with_auth = sql::AnalyzeBatch(
        plan_,
        par ? "ParallelMergeJoin links~AUTH" : "BatchMergeJoin links~AUTH",
        par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelMergeJoin>(
                  std::move(by_dst), std::move(auth_scan),
                  std::vector<int>{2}, std::vector<int>{0}, disp))
            : sql::BatchOperatorPtr(std::make_unique<sql::BatchMergeJoin>(
                  std::move(by_dst), std::move(auth_scan),
                  std::vector<int>{2}, std::vector<int>{0})));
  }
  // with_auth: 0 oid_src .. 5 wgt_rev, 6 oid(auth), 7 score
  std::vector<sql::BatchExpr> contrib_exprs;
  contrib_exprs.push_back(
      sql::BatchExpr::Passthrough("oid_src", TypeId::kInt64, 0));
  contrib_exprs.push_back(
      sql::BatchExpr{"w", TypeId::kDouble, [](const sql::Batch& in) {
                       const auto& wgt = in.col(5).f64;
                       const auto& score = in.col(7).f64;
                       sql::ColumnPtr out = sql::NewColumn(TypeId::kDouble);
                       out->f64.reserve(wgt.size());
                       for (size_t i = 0; i < wgt.size(); ++i) {
                         out->f64.push_back(score[i] * wgt[i]);
                       }
                       return out;
                     }});
  sql::BatchOperatorPtr contrib = sql::AnalyzeBatch(
      plan_,
      par ? "ParallelProject oid_src,score*wgt_rev"
          : "BatchProject oid_src,score*wgt_rev",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelProject>(
                std::move(with_auth), std::move(contrib_exprs), disp))
          : sql::BatchOperatorPtr(std::make_unique<sql::BatchProject>(
                std::move(with_auth), std::move(contrib_exprs))));
  sql::BatchOperatorPtr agg = sql::AnalyzeBatch(
      plan_,
      par ? "UpdateHubs: ParallelSortAggregate(oid_src, sum)"
          : "UpdateHubs: BatchSortAggregate(oid_src, sum)",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelSortAggregate>(
                std::move(contrib), std::vector<SortKey>{{0, false}},
                std::vector<int>{0},
                std::vector<AggSpec>{AggSpec{AggKind::kSum, 1, "score"}},
                disp))
          : sql::BatchOperatorPtr(std::make_unique<sql::BatchSortAggregate>(
                std::move(contrib), std::vector<SortKey>{{0, false}},
                std::vector<int>{0},
                std::vector<AggSpec>{AggSpec{AggKind::kSum, 1, "score"}})));
  sql::Devectorize tail(std::move(agg));
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Collect(&tail));
  stats_.join_seconds += join_timer.ElapsedSeconds();
  return ReplaceNormalized(tables_.hubs, rows);
}

Status JoinDistiller::RunIteration(double rho) {
  if (engine_ == sql::ExecEngine::kScalar) {
    FOCUS_RETURN_IF_ERROR(UpdateAuth(rho));
    return UpdateHubs();
  }
  FOCUS_RETURN_IF_ERROR(UpdateAuthVec(rho));
  return UpdateHubsVec();
}

Status JoinDistiller::RunIterationWithPlan(double rho,
                                           sql::PlanStats* plan) {
  plan_ = plan;
  Status s = RunIteration(rho);
  plan_ = nullptr;
  return s;
}

}  // namespace focus::distill
