#include "webgraph/simulated_web.h"

#include <algorithm>
#include <deque>

#include "util/hash.h"
#include "util/string_util.h"

namespace focus::webgraph {

namespace {
constexpr int kMinDocLen = 30;

// Deterministic per-(seed, server) uniform in [0,1): selects flaky / slow /
// dead servers without consuming any per-attempt RNG draw.
double ServerHash01(uint64_t seed, int32_t server_id, uint64_t salt) {
  uint64_t h = Mix64(
      seed ^ Mix64(salt ^ (static_cast<uint64_t>(
                               static_cast<uint32_t>(server_id)) +
                           1)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr uint64_t kFlakySalt = 0x464c414b59ULL;
constexpr uint64_t kSlowSalt = 0x534c4f57ULL;
constexpr uint64_t kDeadSalt = 0x44454144ULL;
}  // namespace

Result<SimulatedWeb> SimulatedWeb::Generate(
    const taxonomy::Taxonomy& tax, const WebConfig& config,
    std::vector<TopicAffinity> affinities) {
  if (config.pages_per_topic < 2 || config.background_pages < 1) {
    return Status::InvalidArgument("web too small to generate");
  }
  SimulatedWeb web(&tax, config);
  web.zipfs_.emplace_back(config.topic_vocab, config.zipf_exponent);
  web.zipfs_.emplace_back(config.parent_vocab, config.zipf_exponent);
  web.zipfs_.emplace_back(config.shared_vocab, config.zipf_exponent);

  std::vector<taxonomy::Cid> leaves = tax.LeavesUnder(taxonomy::kRootCid);
  Rng rng(config.seed);

  // --- pages and servers ---
  int32_t next_server = 0;
  for (taxonomy::Cid leaf : leaves) {
    int32_t server_base = next_server;
    next_server += config.servers_per_topic;
    auto& members = web.topic_pages_[leaf];
    for (int i = 0; i < config.pages_per_topic; ++i) {
      PageInfo page;
      page.topic = leaf;
      page.server_id = server_base + (i % config.servers_per_topic);
      page.url = StrCat("http://s", page.server_id, ".", tax.Name(leaf),
                        ".example/p", i);
      page.is_hub = rng.Bernoulli(config.hub_fraction);
      members.push_back(static_cast<uint32_t>(web.pages_.size()));
      web.pages_.push_back(std::move(page));
    }
  }
  uint32_t background_start = static_cast<uint32_t>(web.pages_.size());
  int32_t background_server_base = next_server;
  for (int i = 0; i < config.background_pages; ++i) {
    PageInfo page;
    page.topic = kBackgroundTopic;
    page.server_id = background_server_base + (i % config.background_servers);
    page.url = StrCat("http://b", page.server_id, ".web.example/p", i);
    web.pages_.push_back(std::move(page));
  }
  // Per-server index pages at the host root ("http://host/"), reachable
  // via the §3.2 URL-truncation device. They list a sample of the
  // server's pages.
  if (config.generate_server_index_pages) {
    std::unordered_map<int32_t, std::vector<uint32_t>> by_server;
    for (uint32_t i = 0; i < web.pages_.size(); ++i) {
      by_server[web.pages_[i].server_id].push_back(i);
    }
    for (auto& [server_id, members] : by_server) {
      const PageInfo& sample = web.pages_[members.front()];
      size_t path = sample.url.find('/', 7);  // after "http://"
      PageInfo index_page;
      index_page.url = sample.url.substr(0, path + 1);
      index_page.server_id = server_id;
      index_page.topic = sample.topic;
      index_page.is_hub = true;  // a resource list by construction
      int take = std::min<int>(config.index_page_links,
                               static_cast<int>(members.size()));
      for (int i = 0; i < take; ++i) {
        index_page.outlinks.push_back(
            members[rng.Uniform(members.size())]);
      }
      web.pages_.push_back(std::move(index_page));
    }
  }
  for (uint32_t i = 0; i < web.pages_.size(); ++i) {
    web.url_index_.emplace(web.pages_[i].url, i);
  }

  // --- links ---
  // Affinities by source topic.
  std::unordered_map<taxonomy::Cid, std::vector<TopicAffinity>> affinity_of;
  for (const auto& a : affinities) affinity_of[a.from].push_back(a);

  // A background link target; a share of them concentrate on a few
  // universally popular portals (the §2.2.2 leakage hazard).
  auto pick_background = [&]() -> uint32_t {
    int popular = std::min(config.popular_background_pages,
                           config.background_pages);
    if (popular > 0 && rng.Bernoulli(config.popular_background_share)) {
      return background_start + static_cast<uint32_t>(rng.Uniform(popular));
    }
    return background_start +
           static_cast<uint32_t>(rng.Uniform(config.background_pages));
  };

  auto pick_same_topic = [&](taxonomy::Cid leaf, int local_index,
                             int window) -> uint32_t {
    const auto& members = web.topic_pages_.at(leaf);
    int n = static_cast<int>(members.size());
    int target;
    if (rng.Bernoulli(config.p_long_range)) {
      target = static_cast<int>(rng.Uniform(n));
    } else {
      int lo = std::max(0, local_index - window);
      int hi = std::min(n - 1, local_index + window);
      target = lo + static_cast<int>(rng.Uniform(hi - lo + 1));
    }
    if (rng.Bernoulli(config.authority_bias)) {
      // Snap to the nearest designated authority index.
      target = (target / config.authority_every) * config.authority_every;
    }
    if (target == local_index) target = (target + 1) % n;
    return members[static_cast<uint32_t>(target)];
  };

  std::vector<taxonomy::Cid> sibling_buf;
  for (taxonomy::Cid leaf : leaves) {
    const auto& members = web.topic_pages_.at(leaf);
    // Sibling leaf topics (same parent), the generic "related" targets.
    sibling_buf.clear();
    for (taxonomy::Cid s : tax.Children(tax.Parent(leaf))) {
      if (s != leaf && tax.IsLeaf(s)) sibling_buf.push_back(s);
    }
    const auto* affs = affinity_of.contains(leaf) ? &affinity_of.at(leaf)
                                                  : nullptr;
    for (int li = 0; li < static_cast<int>(members.size()); ++li) {
      PageInfo& page = web.pages_[members[li]];
      int outdeg =
          page.is_hub
              ? config.hub_outdegree
              : static_cast<int>(rng.UniformInt(config.outdegree_min,
                                                config.outdegree_max));
      double p_same = page.is_hub ? config.hub_same_topic
                                  : config.p_same_topic;
      int window = page.is_hub ? config.hub_locality_window
                               : config.locality_window;
      for (int l = 0; l < outdeg; ++l) {
        double u = rng.NextDouble();
        if (u < p_same) {
          page.outlinks.push_back(pick_same_topic(leaf, li, window));
          continue;
        }
        u -= p_same;
        bool linked = false;
        if (affs != nullptr) {
          for (const auto& a : *affs) {
            if (u < a.weight) {
              const auto& targets = web.topic_pages_.at(a.to);
              page.outlinks.push_back(
                  targets[rng.Uniform(targets.size())]);
              linked = true;
              break;
            }
            u -= a.weight;
          }
        }
        if (linked) continue;
        if (u < config.p_related_topic && !sibling_buf.empty()) {
          taxonomy::Cid sib = sibling_buf[rng.Uniform(sibling_buf.size())];
          const auto& targets = web.topic_pages_.at(sib);
          page.outlinks.push_back(targets[rng.Uniform(targets.size())]);
          continue;
        }
        page.outlinks.push_back(pick_background());
      }
    }
  }
  // Background pages link almost exclusively among themselves.
  for (uint32_t i = background_start; i < web.pages_.size(); ++i) {
    PageInfo& page = web.pages_[i];
    int outdeg = static_cast<int>(
        rng.UniformInt(config.outdegree_min, config.outdegree_max));
    for (int l = 0; l < outdeg; ++l) {
      if (rng.Bernoulli(config.background_to_topic)) {
        taxonomy::Cid leaf = leaves[rng.Uniform(leaves.size())];
        const auto& targets = web.topic_pages_.at(leaf);
        page.outlinks.push_back(targets[rng.Uniform(targets.size())]);
      } else {
        page.outlinks.push_back(pick_background());
      }
    }
  }
  return web;
}

std::string SimulatedWeb::TopicToken(taxonomy::Cid owner, size_t rank) const {
  return StrCat("w", owner, "_", rank);
}

std::vector<std::string> SimulatedWeb::GenerateTopicText(taxonomy::Cid leaf,
                                                         Rng* rng) const {
  int len = std::max<int>(
      kMinDocLen, static_cast<int>(rng->Gaussian(config_.doc_len_mean,
                                                 config_.doc_len_stddev)));
  taxonomy::Cid parent = tax_->Parent(leaf);
  // Pages differ in topical purity; relevance judgments then vary
  // continuously instead of saturating.
  double topic_fraction = std::clamp(
      rng->Gaussian(config_.topic_token_fraction,
                    config_.topic_fraction_jitter),
      0.15, 0.85);
  std::vector<std::string> tokens;
  tokens.reserve(len);
  for (int i = 0; i < len; ++i) {
    double u = rng->NextDouble();
    if (u < topic_fraction) {
      tokens.push_back(TopicToken(leaf, zipfs_[0].Sample(rng)));
    } else if (u < config_.topic_token_fraction +
                       config_.parent_token_fraction) {
      tokens.push_back(
          StrCat("p", parent, "_", zipfs_[1].Sample(rng)));
    } else {
      tokens.push_back(StrCat("bg_", zipfs_[2].Sample(rng)));
    }
  }
  return tokens;
}

std::vector<std::string> SimulatedWeb::GenerateText(uint32_t index) const {
  Rng rng(Mix64(config_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1))));
  const PageInfo& page = pages_[index];
  if (page.topic == kBackgroundTopic) {
    int len = std::max<int>(
        kMinDocLen, static_cast<int>(rng.Gaussian(config_.doc_len_mean,
                                                  config_.doc_len_stddev)));
    std::vector<std::string> tokens;
    tokens.reserve(len);
    for (int i = 0; i < len; ++i) {
      tokens.push_back(StrCat("bg_", zipfs_[2].Sample(&rng)));
    }
    return tokens;
  }
  return GenerateTopicText(page.topic, &rng);
}

bool SimulatedWeb::ServerIsFlaky(int32_t server_id) const {
  return ServerHash01(config_.seed, server_id, kFlakySalt) <
         config_.faults.flaky_server_fraction;
}

bool SimulatedWeb::ServerIsSlow(int32_t server_id) const {
  return ServerHash01(config_.seed, server_id, kSlowSalt) <
         config_.faults.slow_server_fraction;
}

bool SimulatedWeb::ServerIsDead(int32_t server_id) const {
  return ServerHash01(config_.seed, server_id, kDeadSalt) <
         config_.faults.dead_server_fraction;
}

bool SimulatedWeb::InOutage(int32_t server_id, double now_s) const {
  for (const ServerOutage& o : config_.faults.outages) {
    if (o.server_id == server_id && now_s >= o.start_s && now_s < o.end_s) {
      return true;
    }
  }
  return false;
}

Result<SimulatedWeb::FetchResult> SimulatedWeb::Fetch(std::string_view url,
                                                      VirtualClock* clock,
                                                      int32_t attempt) {
  auto it = url_index_.find(std::string(url));
  if (it == url_index_.end()) {
    return Status::NotFound(StrCat("no such url: ", url));
  }
  uint32_t index = it->second;
  const FetchSimulation& faults = config_.faults;
  const PageInfo& page = pages_[index];
  // A server in a scheduled outage window refuses before the request
  // counts: no attempt ordinal is consumed and no RNG draw happens, so the
  // outcome of each *real* attempt is independent of when outages delay it.
  if (clock != nullptr && InOutage(page.server_id, clock->NowSeconds())) {
    clock->AdvanceSeconds(faults.timeout_ms * 1e-3);
    return Status::ResourceExhausted(StrCat("server outage: ", url));
  }
  if (attempt <= 0) attempt = ++attempt_counts_[index];
  if (ServerIsDead(page.server_id)) {
    if (clock != nullptr) clock->AdvanceSeconds(faults.timeout_ms * 1e-3);
    return Status::DeadlineExceeded(
        StrCat("fetch timed out (dead server): ", url));
  }
  Rng rng(Mix64(config_.seed ^ (index * 31ULL + attempt)));
  double latency_ms = 0;
  if (clock != nullptr) {
    latency_ms = config_.fetch_latency_mean_ms * (0.5 + rng.NextDouble());
    if (ServerIsSlow(page.server_id)) {
      latency_ms *= faults.slow_latency_multiplier;
    }
  }
  // One uniform draw classifies the attempt. The legacy transient band
  // [0, fetch_failure_prob) comes first so configs that never touch
  // `faults` reproduce the exact historical RNG stream and outcomes.
  double u = rng.NextDouble();
  double transient = config_.fetch_failure_prob;
  if (ServerIsFlaky(page.server_id)) {
    transient = std::max(transient, faults.flaky_failure_prob);
  }
  if (u < transient) {
    if (clock != nullptr) clock->AdvanceSeconds(latency_ms * 1e-3);
    return Status::Unavailable(StrCat("fetch failed: ", url));
  }
  u -= transient;
  if (u < faults.permanent_prob) {
    if (clock != nullptr) clock->AdvanceSeconds(latency_ms * 1e-3);
    return Status::NotFound(StrCat("gone: ", url));
  }
  u -= faults.permanent_prob;
  if (u < faults.timeout_prob) {
    if (clock != nullptr) clock->AdvanceSeconds(faults.timeout_ms * 1e-3);
    return Status::DeadlineExceeded(StrCat("fetch timed out: ", url));
  }
  u -= faults.timeout_prob;
  bool truncated = u < faults.truncate_prob;
  if (clock != nullptr) clock->AdvanceSeconds(latency_ms * 1e-3);
  ++fetch_count_;
  FetchResult result;
  result.url = page.url;
  result.server_id = page.server_id;
  result.tokens = GenerateText(index);
  result.outlink_urls.reserve(page.outlinks.size());
  for (uint32_t t : page.outlinks) {
    result.outlink_urls.push_back(pages_[t].url);
  }
  if (truncated) {
    // The transfer dies partway: keep a deterministic prefix of the body
    // and the links scanned so far, and leave malformed tail fragments the
    // tokenizer/classifier must shrug off.
    result.truncated = true;
    double keep = 0.15 + 0.55 * rng.NextDouble();
    result.tokens.resize(std::max<size_t>(
        1, static_cast<size_t>(result.tokens.size() * keep)));
    result.outlink_urls.resize(
        static_cast<size_t>(result.outlink_urls.size() * keep));
    result.tokens.push_back("<!trunc");
    result.tokens.push_back("&#x");
  }
  return result;
}

Result<std::vector<std::string>> SimulatedWeb::Backlinks(
    std::string_view url, int max_results) {
  FOCUS_ASSIGN_OR_RETURN(uint32_t index, PageIndexByUrl(url));
  if (!inlinks_built_) {
    for (uint32_t i = 0; i < pages_.size(); ++i) {
      for (uint32_t t : pages_[i].outlinks) {
        inlinks_[t].push_back(i);
      }
    }
    inlinks_built_ = true;
  }
  std::vector<std::string> out;
  auto it = inlinks_.find(index);
  if (it == inlinks_.end()) return out;
  for (uint32_t src : it->second) {
    if (static_cast<int>(out.size()) >= max_results) break;
    out.push_back(pages_[src].url);
  }
  return out;
}

std::vector<std::string> SimulatedWeb::KeywordSeeds(taxonomy::Cid topic,
                                                    int count,
                                                    int first) const {
  std::vector<std::string> keywords = TopicKeywords(topic, 3);
  auto members_it = topic_pages_.find(topic);
  if (members_it == topic_pages_.end()) return {};
  // Rank pages by keyword occurrences — a stand-in for a search engine.
  std::vector<std::pair<int, uint32_t>> ranked;
  for (uint32_t index : members_it->second) {
    auto tokens = GenerateText(index);
    int hits = 0;
    for (const auto& tok : tokens) {
      for (const auto& kw : keywords) {
        if (tok == kw) {
          ++hits;
          break;
        }
      }
    }
    ranked.emplace_back(-hits, index);  // negative: descending by hits
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::string> seeds;
  for (int i = first;
       i < std::min<int>(first + count, static_cast<int>(ranked.size()));
       ++i) {
    seeds.push_back(pages_[ranked[i].second].url);
  }
  return seeds;
}

Result<uint32_t> SimulatedWeb::PageIndexByUrl(std::string_view url) const {
  auto it = url_index_.find(std::string(url));
  if (it == url_index_.end()) {
    return Status::NotFound(StrCat("no such url: ", url));
  }
  return it->second;
}

std::vector<uint32_t> SimulatedWeb::PagesOfTopic(taxonomy::Cid topic) const {
  auto it = topic_pages_.find(topic);
  return it == topic_pages_.end() ? std::vector<uint32_t>{} : it->second;
}

std::vector<int> SimulatedWeb::ShortestDistances(
    const std::vector<uint32_t>& sources) const {
  std::vector<int> dist(pages_.size(), -1);
  std::deque<uint32_t> queue;
  for (uint32_t s : sources) {
    if (dist[s] == -1) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    uint32_t u = queue.front();
    queue.pop_front();
    for (uint32_t v : pages_[u].outlinks) {
      if (dist[v] == -1) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

text::TermVector SimulatedWeb::SampleDocumentForTopic(taxonomy::Cid leaf,
                                                      Rng* rng) const {
  return text::BuildTermVector(GenerateTopicText(leaf, rng));
}

std::vector<std::string> SimulatedWeb::TopicKeywords(taxonomy::Cid leaf,
                                                     int count) const {
  std::vector<std::string> keywords;
  keywords.reserve(count);
  for (int r = 0; r < count; ++r) {
    keywords.push_back(TopicToken(leaf, r));
  }
  return keywords;
}

}  // namespace focus::webgraph
