// The simulated distributed hypertext graph G (§1.1) and its fetch API.
//
// Structure (topics, servers, links) is generated eagerly and
// deterministically from the seed; page *text* is generated lazily on fetch
// from a per-page RNG, so unvisited pages cost nothing — mirroring the
// non-trivial cost of visiting a vertex that motivates focused crawling.
#ifndef FOCUS_WEBGRAPH_SIMULATED_WEB_H_
#define FOCUS_WEBGRAPH_SIMULATED_WEB_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "taxonomy/taxonomy.h"
#include "text/document.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"
#include "webgraph/web_config.h"

namespace focus::webgraph {

struct PageInfo {
  std::string url;
  int32_t server_id = 0;
  taxonomy::Cid topic = kBackgroundTopic;  // ground-truth leaf topic
  bool is_hub = false;
  std::vector<uint32_t> outlinks;  // page indices
};

class SimulatedWeb {
 public:
  struct FetchResult {
    std::string url;
    int32_t server_id = 0;
    std::vector<std::string> tokens;        // page text
    std::vector<std::string> outlink_urls;  // scanned hyperlinks
    // The transfer was cut short: tokens/outlinks are a prefix of the real
    // page plus a malformed tail fragment.
    bool truncated = false;
  };

  // Generates a web for the leaf topics of `tax`.
  static Result<SimulatedWeb> Generate(const taxonomy::Taxonomy& tax,
                                       const WebConfig& config,
                                       std::vector<TopicAffinity> affinities);

  // --- the crawler-facing API ---

  // Fetches a page, charging latency to `clock` when provided. Failures
  // follow the config's fault model, deterministic per (page, attempt):
  //   kUnavailable       transient 5xx (fetch_failure_prob; elevated on
  //                      flaky servers)
  //   kNotFound          unknown URL, or a permanent 404-style loss
  //   kDeadlineExceeded  timeout after faults.timeout_ms (always, on dead
  //                      servers)
  //   kResourceExhausted scheduled server outage on the virtual clock;
  //                      consumes no attempt ordinal and no RNG draw, so
  //                      when a retry lands never changes its outcome
  // Truncated transfers succeed with FetchResult::truncated set.
  //
  // `attempt` <= 0 numbers attempts with an internal per-page counter.
  // A positive `attempt` supplies the ordinal explicitly and leaves the
  // internal counter untouched: a crawler that persists its retry count
  // (CRAWL.numtries) can key outcomes off durable state, so refetching a
  // page whose attempt bookkeeping a crash destroyed replays the exact
  // outcome of the lost attempt instead of drawing a fresh one.
  Result<FetchResult> Fetch(std::string_view url,
                            VirtualClock* clock = nullptr,
                            int32_t attempt = 0);

  // Server behaviours, deterministic in (seed, server_id).
  bool ServerIsFlaky(int32_t server_id) const;
  bool ServerIsSlow(int32_t server_id) const;
  bool ServerIsDead(int32_t server_id) const;
  // True when `server_id` has a scheduled outage covering virtual time
  // `now_s`.
  bool InOutage(int32_t server_id, double now_s) const;

  // Pages that link to `url` (up to `max_results`, deterministic order) —
  // the backlink metadata service of §3.2's backward-crawling device
  // (citing "Surfing the web backwards"). The reverse adjacency is built
  // lazily on first use.
  Result<std::vector<std::string>> Backlinks(std::string_view url,
                                             int max_results);

  // A keyword-search seeder: ranks pages of `topic` by occurrences of the
  // topic's characteristic keywords in their text and returns
  // [first, first+count) of that ranking — disjoint slices give the
  // disjoint start sets S1, S2 of the coverage experiment (§3.5).
  std::vector<std::string> KeywordSeeds(taxonomy::Cid topic, int count,
                                        int first = 0) const;

  // --- ground truth (evaluation only; the crawler never calls these) ---

  size_t num_pages() const { return pages_.size(); }
  const PageInfo& page(uint32_t index) const { return pages_[index]; }
  Result<uint32_t> PageIndexByUrl(std::string_view url) const;
  std::vector<uint32_t> PagesOfTopic(taxonomy::Cid topic) const;

  // BFS shortest link distance (in the full graph) from `sources` to every
  // page; unreachable pages get -1.
  std::vector<int> ShortestDistances(
      const std::vector<uint32_t>& sources) const;

  // Samples a held-out document with topic `leaf`'s language model (used
  // as classifier training examples D(c); never a crawlable page).
  text::TermVector SampleDocumentForTopic(taxonomy::Cid leaf, Rng* rng) const;

  // Tokens most characteristic of `leaf` (its top vocabulary), e.g. for
  // building keyword queries.
  std::vector<std::string> TopicKeywords(taxonomy::Cid leaf,
                                         int count = 3) const;

  uint64_t fetch_count() const { return fetch_count_; }

 private:
  SimulatedWeb(const taxonomy::Taxonomy* tax, WebConfig config)
      : tax_(tax), config_(config) {}

  // Deterministic token stream for page `index`.
  std::vector<std::string> GenerateText(uint32_t index) const;
  std::vector<std::string> GenerateTopicText(taxonomy::Cid leaf,
                                             Rng* rng) const;
  std::string TopicToken(taxonomy::Cid owner, size_t rank) const;

  const taxonomy::Taxonomy* tax_;
  WebConfig config_;
  std::vector<PageInfo> pages_;
  std::unordered_map<std::string, uint32_t> url_index_;
  std::unordered_map<taxonomy::Cid, std::vector<uint32_t>> topic_pages_;
  std::vector<ZipfTable> zipfs_;  // [0]=topic vocab, [1]=parent, [2]=shared
  uint64_t fetch_count_ = 0;
  std::unordered_map<uint32_t, int> attempt_counts_;  // per-page fetch tries
  // Lazily built reverse adjacency for Backlinks().
  std::unordered_map<uint32_t, std::vector<uint32_t>> inlinks_;
  bool inlinks_built_ = false;
};

}  // namespace focus::webgraph

#endif  // FOCUS_WEBGRAPH_SIMULATED_WEB_H_
