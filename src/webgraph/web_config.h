// Generation parameters for the simulated web.
//
// The real 1999 web is replaced by a deterministic synthetic hypertext
// graph whose *statistics* match what the paper's method depends on:
//   * radius-1 rule: a page's links go to its own topic with probability
//     p_same_topic (~0.45, the paper's measured Yahoo! statistic), to
//     topically affine communities with p_related_topic, else into the
//     background "web at large";
//   * radius-2 rule: a hub_fraction of topic pages are hubs with high
//     outdegree concentrated on their topic;
//   * topical locality: same-topic links stay within a window of page
//     indices, so communities have large effective diameter and good
//     resources sit many links from any seed set (Figure 7's premise);
//   * designated authorities: a fraction of topic pages attract a biased
//     share of in-links.
#ifndef FOCUS_WEBGRAPH_WEB_CONFIG_H_
#define FOCUS_WEBGRAPH_WEB_CONFIG_H_

#include <cstdint>
#include <vector>

#include "taxonomy/taxonomy.h"

namespace focus::webgraph {

// Topic id used for background pages (not in any taxonomy community).
inline constexpr taxonomy::Cid kBackgroundTopic = 0xFFFF;

// One scheduled downtime window for a server, on the virtual clock:
// fetches landing in [start_s, end_s) are refused with kResourceExhausted.
// A refusal consumes neither the page's attempt ordinal nor its retry
// budget, so outage timing cannot change which attempts eventually
// succeed — only when.
struct ServerOutage {
  int32_t server_id = 0;
  double start_s = 0;
  double end_s = 0;
};

// The hostile-web fault model layered on top of the legacy
// fetch_latency_mean_ms / fetch_failure_prob knobs. Per-attempt outcomes
// are deterministic in (seed, url, attempt); per-server behaviours are
// deterministic in (seed, server) and drawn without touching the
// per-attempt RNG stream, so enabling a server behaviour never perturbs
// unrelated outcomes.
struct FetchSimulation {
  // Per-attempt error probabilities (stacked after the legacy transient
  // band, so configs that only set fetch_failure_prob reproduce the exact
  // historical outcomes).
  double permanent_prob = 0.0;  // 404-style: gone for good, never retried
  double timeout_prob = 0.0;    // deadline expiry; retries count double
  double truncate_prob = 0.0;   // body cut short mid-transfer
  double timeout_ms = 2000;     // deadline charged on timeouts and outages

  // Server behaviours. Fractions select servers by a seed-keyed hash.
  double flaky_server_fraction = 0.0;  // servers with elevated 5xx rates
  double flaky_failure_prob = 0.30;    // transient prob on flaky servers
  double slow_server_fraction = 0.0;
  double slow_latency_multiplier = 4.0;
  double dead_server_fraction = 0.0;  // every fetch times out

  std::vector<ServerOutage> outages;
};

struct WebConfig {
  uint64_t seed = 1;

  // --- community structure ---
  int pages_per_topic = 400;
  int servers_per_topic = 25;
  int background_pages = 30000;
  int background_servers = 500;

  // --- text ---
  int topic_vocab = 150;    // tokens unique to each leaf topic
  int parent_vocab = 80;    // tokens shared by siblings (per internal node)
  int shared_vocab = 4000;  // background vocabulary
  int doc_len_mean = 200;
  int doc_len_stddev = 40;
  double topic_token_fraction = 0.50;
  // Per-page jitter of the topic fraction (pages differ in topical
  // purity, so judged relevance varies continuously as on the real web).
  double topic_fraction_jitter = 0.15;
  double parent_token_fraction = 0.12;
  double zipf_exponent = 1.1;

  // --- linkage ---
  int outdegree_min = 6;
  int outdegree_max = 14;
  double p_same_topic = 0.25;
  double p_related_topic = 0.08;
  // Remaining probability goes to background targets.
  int locality_window = 25;       // same-topic links stay within +/- window
  double p_long_range = 0.20;     // fraction of same-topic links that jump
  double hub_fraction = 0.05;
  int hub_outdegree = 36;
  double hub_same_topic = 0.85;   // hubs concentrate on their topic
  int hub_locality_window = 80;
  double authority_bias = 0.20;   // probability a same-topic link is
                                  // redirected to a designated authority
  int authority_every = 12;       // page indices divisible by this are
                                  // designated authorities
  double background_to_topic = 0.003;  // background rarely links inward
  // "Pages of all topics point to Netscape and Free Speech Online"
  // (§2.2.2): a handful of universally popular off-topic portals receive a
  // disproportionate share of background-directed links from everywhere.
  int popular_background_pages = 12;
  double popular_background_share = 0.15;

  // When enabled, every server hosts an index page at its root
  // ("http://host/") linking to a sample of its pages — the target of the
  // §3.2 URL-truncation frontier device. Off by default so the graph
  // statistics above are exactly as configured.
  bool generate_server_index_pages = false;
  int index_page_links = 15;

  // --- fetch simulation ---
  double fetch_latency_mean_ms = 120;
  double fetch_failure_prob = 0.01;  // transient (5xx-style) baseline
  FetchSimulation faults;
};

// A topical affinity: pages of `from` link to pages of `to` with
// probability `weight` per link (the citation-sociology mechanism; e.g.
// cycling -> first_aid).
struct TopicAffinity {
  taxonomy::Cid from;
  taxonomy::Cid to;
  double weight;
};

}  // namespace focus::webgraph

#endif  // FOCUS_WEBGRAPH_WEB_CONFIG_H_
