// Table: a heap file of serialized tuples plus secondary B+-tree indexes.
//
// Index keys are packed into a single uint64 by concatenating per-column
// bit fields (most significant first), so composite keys like the paper's
// (pcid, tid) probe key order lexicographically. Key columns must be
// non-negative integers (ids, hashes) or strings (hashed; equality-only).
#ifndef FOCUS_SQL_TABLE_H_
#define FOCUS_SQL_TABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/schema.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/status.h"

namespace focus::sql {

struct IndexSpec {
  std::string name;
  std::vector<int> key_cols;
  // Bits per key column; empty means defaults (int32: 32, int64/string: 64).
  // Total must be <= 64.
  std::vector<int> key_bits;
};

// Persisted storage position of one B+-tree index.
struct IndexLayout {
  storage::PageId root = storage::kInvalidPageId;
  int height = 1;
  uint64_t num_entries = 0;
};

// Everything a table needs — beyond its schema and index specs, which the
// owning application re-declares — to reattach to its pages after a crash.
// Serialized into WAL commit metadata by Catalog::SerializeLayouts.
struct TableLayout {
  storage::PageId heap_first = storage::kInvalidPageId;
  storage::PageId heap_last = storage::kInvalidPageId;
  uint64_t num_records = 0;
  std::vector<IndexLayout> indexes;
};

class Table {
 public:
  static Result<std::unique_ptr<Table>> Create(storage::BufferPool* pool,
                                               std::string name,
                                               Schema schema,
                                               std::vector<IndexSpec> indexes);

  // Reattaches to existing storage: same declaration as Create, plus the
  // persisted layout recovered from WAL metadata. `layout.indexes` must
  // match `indexes` in length.
  static Result<std::unique_ptr<Table>> Attach(storage::BufferPool* pool,
                                               std::string name,
                                               Schema schema,
                                               std::vector<IndexSpec> indexes,
                                               const TableLayout& layout);

  // Snapshot of the current storage position (for persistence).
  TableLayout Layout() const;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return heap_->num_records(); }
  int num_indexes() const { return static_cast<int>(indexes_.size()); }
  storage::BufferPool* buffer_pool() const { return pool_; }

  Result<storage::Rid> Insert(const Tuple& tuple);
  Status Update(const storage::Rid& rid, const Tuple& tuple);
  Status Delete(const storage::Rid& rid);
  Status Get(const storage::Rid& rid, Tuple* out) const;

  // Drops every row (and index entry). Storage pages are abandoned, not
  // reclaimed — there is no free-space map; callers that clear repeatedly
  // (the distiller's "delete from HUBS") accept file growth.
  Status Clear();

  // Equality lookup on index `index_idx`; appends matching RIDs to `out`.
  Status IndexLookup(int index_idx, const std::vector<Value>& key,
                     std::vector<storage::Rid>* out) const;

  // Index id by name, or -1.
  int IndexId(std::string_view index_name) const;

  // Packs `key` values per the index spec.
  Result<uint64_t> PackKey(int index_idx, const std::vector<Value>& key) const;

  // Forward scan over rows.
  class Iterator {
   public:
    bool Next(storage::Rid* rid, Tuple* tuple);
    const Status& status() const { return status_; }

   private:
    friend class Table;
    Iterator(const Table* table, storage::HeapFile::Iterator it)
        : table_(table), it_(std::move(it)) {}
    const Table* table_;
    storage::HeapFile::Iterator it_;
    Status status_;
  };

  Iterator Scan() const { return Iterator(this, heap_->Scan()); }

  // Appends every serialized heap record in scan order, undecoded. The
  // parallel table scan collects records through one pass here (the heap
  // and buffer pool are not safe for concurrent iteration), then splits
  // the tuple deserialization across morsels.
  Status ScanRecords(std::vector<std::string>* out) const;

 private:
  struct Index {
    IndexSpec spec;
    storage::BPlusTree tree;
  };

  Table(storage::BufferPool* pool, std::string name, Schema schema)
      : pool_(pool), name_(std::move(name)), schema_(std::move(schema)) {}

  Result<uint64_t> PackKeyFromTuple(const Index& index,
                                    const Tuple& tuple) const;

  storage::BufferPool* pool_;
  std::string name_;
  Schema schema_;
  std::optional<storage::HeapFile> heap_;
  std::vector<Index> indexes_;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_TABLE_H_
