// Catalog: owns all tables of one database instance.
#ifndef FOCUS_SQL_CATALOG_H_
#define FOCUS_SQL_CATALOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sql/table.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace focus::sql {

class Catalog {
 public:
  // `pool` must outlive the catalog.
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  Result<Table*> CreateTable(std::string name, Schema schema,
                             std::vector<IndexSpec> indexes = {});

  // Returns the table or nullptr.
  Table* GetTable(std::string_view name) const;

  Status DropTable(std::string_view name);

  storage::BufferPool* buffer_pool() const { return pool_; }

  std::vector<std::string> TableNames() const;

 private:
  storage::BufferPool* pool_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_CATALOG_H_
