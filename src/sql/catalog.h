// Catalog: owns all tables of one database instance.
//
// Table metadata (heap chain heads, index roots) lives in memory; for
// crash recovery the catalog serializes each table's TableLayout into an
// opaque blob that WAL commits carry (wal.h). On reopen the application
// re-declares its schemas and calls AttachTable with the recovered layout.
#ifndef FOCUS_SQL_CATALOG_H_
#define FOCUS_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sql/table.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace focus::sql {

class Catalog {
 public:
  // `pool` must outlive the catalog.
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  Result<Table*> CreateTable(std::string name, Schema schema,
                             std::vector<IndexSpec> indexes = {});

  // Reattaches a table to existing pages from a recovered layout.
  Result<Table*> AttachTable(std::string name, Schema schema,
                             std::vector<IndexSpec> indexes,
                             const TableLayout& layout);

  // Serializes every table's layout (sorted by name, so the blob — and
  // anything layered on it, like WAL commit bytes — is deterministic).
  std::string SerializeLayouts() const;

  // Parses a SerializeLayouts blob back into name -> layout.
  static Result<std::map<std::string, TableLayout>> ParseLayouts(
      std::string_view blob);

  // Returns the table or nullptr.
  Table* GetTable(std::string_view name) const;

  Status DropTable(std::string_view name);

  storage::BufferPool* buffer_pool() const { return pool_; }

  std::vector<std::string> TableNames() const;

 private:
  storage::BufferPool* pool_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_CATALOG_H_
