#include "sql/value.h"

#include <cassert>
#include <cstring>

#include "util/hash.h"
#include "util/string_util.h"

namespace focus::sql {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDouble:
      return "double";
    case TypeId::kString:
      return "string";
  }
  return "unknown";
}

double Value::AsNumeric() const {
  switch (type_) {
    case TypeId::kInt32:
      return AsInt32();
    case TypeId::kInt64:
      return static_cast<double>(AsInt64());
    case TypeId::kDouble:
      return AsDouble();
    case TypeId::kString:
      break;
  }
  assert(false && "AsNumeric on string value");
  return 0.0;
}

int Value::Compare(const Value& other) const {
  assert(type_ == other.type_ && "comparing values of different types");
  if (null_ || other.null_) {
    if (null_ && other.null_) return 0;
    return null_ ? -1 : 1;
  }
  auto cmp3 = [](auto a, auto b) { return a < b ? -1 : (a > b ? 1 : 0); };
  switch (type_) {
    case TypeId::kInt32:
      return cmp3(AsInt32(), other.AsInt32());
    case TypeId::kInt64:
      return cmp3(AsInt64(), other.AsInt64());
    case TypeId::kDouble:
      return cmp3(AsDouble(), other.AsDouble());
    case TypeId::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
  }
  return 0;
}

uint64_t Value::Hash() const {
  if (null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case TypeId::kInt32:
      return Mix64(static_cast<uint64_t>(static_cast<uint32_t>(AsInt32())));
    case TypeId::kInt64:
      return Mix64(static_cast<uint64_t>(AsInt64()));
    case TypeId::kDouble: {
      double d = AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case TypeId::kString:
      return Fnv1a64(AsString());
  }
  return 0;
}

void Value::SerializeTo(std::string* out) const {
  assert(!null_ && "cannot serialize NULL");
  switch (type_) {
    case TypeId::kInt32: {
      int32_t v = AsInt32();
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case TypeId::kInt64: {
      int64_t v = AsInt64();
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case TypeId::kDouble: {
      double v = AsDouble();
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case TypeId::kString: {
      const std::string& s = AsString();
      assert(s.size() <= 0xFFFF);
      uint16_t len = static_cast<uint16_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      return;
    }
  }
}

Result<Value> Value::Deserialize(TypeId type, std::string_view data,
                                 size_t* offset) {
  auto need = [&](size_t n) -> Status {
    if (*offset + n > data.size()) {
      return Status::OutOfRange(
          StrCat("truncated value at offset ", *offset));
    }
    return Status::OK();
  };
  switch (type) {
    case TypeId::kInt32: {
      FOCUS_RETURN_IF_ERROR(need(4));
      int32_t v;
      std::memcpy(&v, data.data() + *offset, 4);
      *offset += 4;
      return Int32(v);
    }
    case TypeId::kInt64: {
      FOCUS_RETURN_IF_ERROR(need(8));
      int64_t v;
      std::memcpy(&v, data.data() + *offset, 8);
      *offset += 8;
      return Int64(v);
    }
    case TypeId::kDouble: {
      FOCUS_RETURN_IF_ERROR(need(8));
      double v;
      std::memcpy(&v, data.data() + *offset, 8);
      *offset += 8;
      return Double(v);
    }
    case TypeId::kString: {
      FOCUS_RETURN_IF_ERROR(need(2));
      uint16_t len;
      std::memcpy(&len, data.data() + *offset, 2);
      *offset += 2;
      FOCUS_RETURN_IF_ERROR(need(len));
      std::string s(data.substr(*offset, len));
      *offset += len;
      return Str(std::move(s));
    }
  }
  return Status::InvalidArgument("unknown type id");
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case TypeId::kInt32:
      return StrCat(AsInt32());
    case TypeId::kInt64:
      return StrCat(AsInt64());
    case TypeId::kDouble:
      return StrCat(AsDouble());
    case TypeId::kString:
      return AsString();
  }
  return "?";
}

}  // namespace focus::sql
