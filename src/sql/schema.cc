#include "sql/schema.h"

#include "util/string_util.h"

namespace focus::sql {

int Schema::ColumnIndex(std::string_view name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return -1;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(StrCat(c.name, ":", TypeName(c.type)));
  }
  return StrCat("(", StrJoin(parts, ", "), ")");
}

void Tuple::SerializeTo(const Schema& schema, std::string* out) const {
  (void)schema;
  for (const auto& v : values_) v.SerializeTo(out);
}

Result<Tuple> Tuple::Deserialize(const Schema& schema,
                                 std::string_view data) {
  std::vector<Value> values;
  values.reserve(schema.num_columns());
  size_t offset = 0;
  for (int i = 0; i < schema.num_columns(); ++i) {
    FOCUS_ASSIGN_OR_RETURN(Value v,
                           Value::Deserialize(schema.column(i).type, data,
                                              &offset));
    values.push_back(std::move(v));
  }
  if (offset != data.size()) {
    return Status::InvalidArgument(
        StrCat("trailing bytes in record: ", data.size() - offset));
  }
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const auto& v : values_) parts.push_back(v.ToString());
  return StrCat("[", StrJoin(parts, ", "), "]");
}

}  // namespace focus::sql
