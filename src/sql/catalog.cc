#include "sql/catalog.h"

#include "util/string_util.h"

namespace focus::sql {

Result<Table*> Catalog::CreateTable(std::string name, Schema schema,
                                    std::vector<IndexSpec> indexes) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists(StrCat("table ", name));
  }
  FOCUS_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(pool_, name, std::move(schema), std::move(indexes)));
  Table* raw = table.get();
  tables_.emplace(std::move(name), std::move(table));
  return raw;
}

Table* Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::DropTable(std::string_view name) {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table ", name));
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace focus::sql
