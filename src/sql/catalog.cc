#include "sql/catalog.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace focus::sql {

namespace {
// Layout blob wire helpers (host-endian; the blob never leaves the
// machine that wrote it — it travels via the WAL / manifest).
template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view blob, size_t* off, T* v) {
  if (*off + sizeof(T) > blob.size()) return false;
  std::memcpy(v, blob.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}
}  // namespace

Result<Table*> Catalog::CreateTable(std::string name, Schema schema,
                                    std::vector<IndexSpec> indexes) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists(StrCat("table ", name));
  }
  FOCUS_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(pool_, name, std::move(schema), std::move(indexes)));
  Table* raw = table.get();
  tables_.emplace(std::move(name), std::move(table));
  return raw;
}

Result<Table*> Catalog::AttachTable(std::string name, Schema schema,
                                    std::vector<IndexSpec> indexes,
                                    const TableLayout& layout) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists(StrCat("table ", name));
  }
  FOCUS_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Attach(pool_, name, std::move(schema), std::move(indexes),
                    layout));
  Table* raw = table.get();
  tables_.emplace(std::move(name), std::move(table));
  return raw;
}

std::string Catalog::SerializeLayouts() const {
  std::vector<std::string> names = TableNames();
  std::sort(names.begin(), names.end());
  std::string blob;
  AppendPod<uint32_t>(&blob, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    TableLayout layout = GetTable(name)->Layout();
    AppendPod<uint32_t>(&blob, static_cast<uint32_t>(name.size()));
    blob.append(name);
    AppendPod<uint32_t>(&blob, layout.heap_first);
    AppendPod<uint32_t>(&blob, layout.heap_last);
    AppendPod<uint64_t>(&blob, layout.num_records);
    AppendPod<uint32_t>(&blob, static_cast<uint32_t>(layout.indexes.size()));
    for (const IndexLayout& il : layout.indexes) {
      AppendPod<uint32_t>(&blob, il.root);
      AppendPod<int32_t>(&blob, static_cast<int32_t>(il.height));
      AppendPod<uint64_t>(&blob, il.num_entries);
    }
  }
  return blob;
}

Result<std::map<std::string, TableLayout>> Catalog::ParseLayouts(
    std::string_view blob) {
  std::map<std::string, TableLayout> layouts;
  size_t off = 0;
  uint32_t num_tables = 0;
  if (!ReadPod(blob, &off, &num_tables)) {
    return Status::IOError("corrupt layout blob: truncated table count");
  }
  for (uint32_t t = 0; t < num_tables; ++t) {
    uint32_t name_len = 0;
    if (!ReadPod(blob, &off, &name_len) || off + name_len > blob.size()) {
      return Status::IOError("corrupt layout blob: truncated table name");
    }
    std::string name(blob.substr(off, name_len));
    off += name_len;
    TableLayout layout;
    uint32_t num_indexes = 0;
    if (!ReadPod(blob, &off, &layout.heap_first) ||
        !ReadPod(blob, &off, &layout.heap_last) ||
        !ReadPod(blob, &off, &layout.num_records) ||
        !ReadPod(blob, &off, &num_indexes)) {
      return Status::IOError(StrCat("corrupt layout blob: truncated ", name));
    }
    layout.indexes.resize(num_indexes);
    for (uint32_t i = 0; i < num_indexes; ++i) {
      int32_t height = 0;
      if (!ReadPod(blob, &off, &layout.indexes[i].root) ||
          !ReadPod(blob, &off, &height) ||
          !ReadPod(blob, &off, &layout.indexes[i].num_entries)) {
        return Status::IOError(
            StrCat("corrupt layout blob: truncated ", name, " index ", i));
      }
      layout.indexes[i].height = height;
    }
    layouts.emplace(std::move(name), std::move(layout));
  }
  return layouts;
}

Table* Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::DropTable(std::string_view name) {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table ", name));
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace focus::sql
