// Table schemas and tuples.
#ifndef FOCUS_SQL_SCHEMA_H_
#define FOCUS_SQL_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "sql/value.h"
#include "util/status.h"

namespace focus::sql {

struct Column {
  std::string name;
  TypeId type;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> cols) : columns_(cols) {}
  explicit Schema(std::vector<Column> cols) : columns_(std::move(cols)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Index of `name`, or -1.
  int ColumnIndex(std::string_view name) const;

  // Concatenation (for join outputs). Duplicate names are allowed; lookups
  // find the first.
  static Schema Concat(const Schema& a, const Schema& b);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

// A row: one Value per schema column.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  int size() const { return static_cast<int>(values_.size()); }
  const Value& Get(int i) const { return values_[i]; }
  Value& Mutable(int i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  // Join-output assembly that reuses this tuple's storage: resizing and
  // copy-assigning element-wise keeps each Value's string capacity, so a
  // join emitting millions of rows into one output tuple stops allocating
  // after the first row.
  void AssignConcat(const Tuple& left, const Tuple& right) {
    values_.resize(left.size() + right.size());
    size_t i = 0;
    for (const Value& v : left.values()) values_[i++] = v;
    for (const Value& v : right.values()) values_[i++] = v;
  }
  // Left-outer padding variant: right side becomes NULLs of the schema's
  // column types.
  void AssignConcatNulls(const Tuple& left, const Schema& right_schema) {
    values_.resize(left.size() + right_schema.num_columns());
    size_t i = 0;
    for (const Value& v : left.values()) values_[i++] = v;
    for (int c = 0; c < right_schema.num_columns(); ++c) {
      values_[i++] = Value::Null(right_schema.column(c).type);
    }
  }

  // Serializes per `schema` column order into `out`.
  void SerializeTo(const Schema& schema, std::string* out) const;
  std::string Serialize(const Schema& schema) const {
    std::string out;
    SerializeTo(schema, &out);
    return out;
  }

  static Result<Tuple> Deserialize(const Schema& schema,
                                   std::string_view data);

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_SCHEMA_H_
