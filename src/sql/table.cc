#include "sql/table.h"

#include "util/hash.h"
#include "util/string_util.h"

namespace focus::sql {

namespace {
int DefaultBits(TypeId type) {
  switch (type) {
    case TypeId::kInt32:
      return 32;
    case TypeId::kInt64:
    case TypeId::kString:
      return 64;
    case TypeId::kDouble:
      break;
  }
  return -1;
}

Result<uint64_t> KeyChunk(const Value& v, int bits) {
  uint64_t chunk = 0;
  switch (v.type()) {
    case TypeId::kInt32: {
      int32_t x = v.AsInt32();
      if (x < 0) {
        return Status::InvalidArgument("negative int32 index key");
      }
      chunk = static_cast<uint32_t>(x);
      break;
    }
    case TypeId::kInt64:
      chunk = static_cast<uint64_t>(v.AsInt64());
      break;
    case TypeId::kString:
      chunk = Fnv1a64(v.AsString());
      break;
    case TypeId::kDouble:
      return Status::InvalidArgument("double index keys are unsupported");
  }
  if (bits < 64 && chunk >> bits != 0) {
    return Status::InvalidArgument(
        StrCat("key value ", chunk, " does not fit in ", bits, " bits"));
  }
  return chunk;
}
}  // namespace

namespace {
// Fills defaulted key_bits and validates the spec against the schema.
Status ResolveIndexSpec(const Schema& schema, IndexSpec* spec) {
  if (spec->key_bits.empty()) {
    for (int col : spec->key_cols) {
      if (col < 0 || col >= schema.num_columns()) {
        return Status::InvalidArgument(
            StrCat("index ", spec->name, ": bad column ", col));
      }
      int bits = DefaultBits(schema.column(col).type);
      if (bits < 0) {
        return Status::InvalidArgument(
            StrCat("index ", spec->name, ": unsupported key type"));
      }
      spec->key_bits.push_back(bits);
    }
  }
  if (spec->key_bits.size() != spec->key_cols.size()) {
    return Status::InvalidArgument(
        StrCat("index ", spec->name, ": key_bits/key_cols size mismatch"));
  }
  int total = 0;
  for (int b : spec->key_bits) total += b;
  if (total > 64) {
    return Status::InvalidArgument(
        StrCat("index ", spec->name, ": packed key needs ", total,
               " bits (max 64)"));
  }
  return Status::OK();
}
}  // namespace

Result<std::unique_ptr<Table>> Table::Create(storage::BufferPool* pool,
                                             std::string name, Schema schema,
                                             std::vector<IndexSpec> indexes) {
  auto table = std::unique_ptr<Table>(
      new Table(pool, std::move(name), std::move(schema)));
  FOCUS_ASSIGN_OR_RETURN(storage::HeapFile heap,
                         storage::HeapFile::Create(pool));
  table->heap_ = std::move(heap);
  for (auto& spec : indexes) {
    FOCUS_RETURN_IF_ERROR(ResolveIndexSpec(table->schema_, &spec));
    FOCUS_ASSIGN_OR_RETURN(storage::BPlusTree tree,
                           storage::BPlusTree::Create(pool));
    table->indexes_.push_back(Index{std::move(spec), std::move(tree)});
  }
  return table;
}

Result<std::unique_ptr<Table>> Table::Attach(storage::BufferPool* pool,
                                             std::string name, Schema schema,
                                             std::vector<IndexSpec> indexes,
                                             const TableLayout& layout) {
  if (layout.indexes.size() != indexes.size()) {
    return Status::InvalidArgument(
        StrCat("table ", name, ": layout has ", layout.indexes.size(),
               " indexes, declaration has ", indexes.size()));
  }
  auto table = std::unique_ptr<Table>(
      new Table(pool, std::move(name), std::move(schema)));
  table->heap_ = storage::HeapFile::Attach(
      pool, layout.heap_first, layout.heap_last, layout.num_records);
  for (size_t i = 0; i < indexes.size(); ++i) {
    auto& spec = indexes[i];
    FOCUS_RETURN_IF_ERROR(ResolveIndexSpec(table->schema_, &spec));
    const IndexLayout& il = layout.indexes[i];
    table->indexes_.push_back(Index{
        std::move(spec),
        storage::BPlusTree::Attach(pool, il.root, il.height, il.num_entries)});
  }
  return table;
}

TableLayout Table::Layout() const {
  TableLayout layout;
  layout.heap_first = heap_->first_page_id();
  layout.heap_last = heap_->last_page_id();
  layout.num_records = heap_->num_records();
  layout.indexes.reserve(indexes_.size());
  for (const auto& index : indexes_) {
    layout.indexes.push_back(IndexLayout{index.tree.root_page_id(),
                                         index.tree.height(),
                                         index.tree.num_entries()});
  }
  return layout;
}

Result<uint64_t> Table::PackKey(int index_idx,
                                const std::vector<Value>& key) const {
  const Index& index = indexes_[index_idx];
  if (key.size() != index.spec.key_cols.size()) {
    return Status::InvalidArgument(
        StrCat("index ", index.spec.name, ": expected ",
               index.spec.key_cols.size(), " key values, got ", key.size()));
  }
  uint64_t packed = 0;
  for (size_t i = 0; i < key.size(); ++i) {
    FOCUS_ASSIGN_OR_RETURN(uint64_t chunk,
                           KeyChunk(key[i], index.spec.key_bits[i]));
    int bits = index.spec.key_bits[i];
    packed = bits >= 64 ? chunk : (packed << bits) | chunk;
  }
  return packed;
}

Result<uint64_t> Table::PackKeyFromTuple(const Index& index,
                                         const Tuple& tuple) const {
  uint64_t packed = 0;
  for (size_t i = 0; i < index.spec.key_cols.size(); ++i) {
    FOCUS_ASSIGN_OR_RETURN(
        uint64_t chunk,
        KeyChunk(tuple.Get(index.spec.key_cols[i]), index.spec.key_bits[i]));
    int bits = index.spec.key_bits[i];
    packed = bits >= 64 ? chunk : (packed << bits) | chunk;
  }
  return packed;
}

Result<storage::Rid> Table::Insert(const Tuple& tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", tuple.size(), " vs schema ",
               schema_.num_columns()));
  }
  std::string record = tuple.Serialize(schema_);
  FOCUS_ASSIGN_OR_RETURN(storage::Rid rid, heap_->Insert(record));
  for (auto& index : indexes_) {
    FOCUS_ASSIGN_OR_RETURN(uint64_t key, PackKeyFromTuple(index, tuple));
    FOCUS_RETURN_IF_ERROR(index.tree.Insert(key, rid.Pack()));
  }
  return rid;
}

Status Table::Update(const storage::Rid& rid, const Tuple& tuple) {
  Tuple old;
  FOCUS_RETURN_IF_ERROR(Get(rid, &old));
  std::string record = tuple.Serialize(schema_);
  FOCUS_RETURN_IF_ERROR(heap_->Update(rid, record));
  for (auto& index : indexes_) {
    FOCUS_ASSIGN_OR_RETURN(uint64_t old_key, PackKeyFromTuple(index, old));
    FOCUS_ASSIGN_OR_RETURN(uint64_t new_key, PackKeyFromTuple(index, tuple));
    if (old_key != new_key) {
      FOCUS_RETURN_IF_ERROR(index.tree.Remove(old_key, rid.Pack()));
      FOCUS_RETURN_IF_ERROR(index.tree.Insert(new_key, rid.Pack()));
    }
  }
  return Status::OK();
}

Status Table::Delete(const storage::Rid& rid) {
  Tuple old;
  FOCUS_RETURN_IF_ERROR(Get(rid, &old));
  FOCUS_RETURN_IF_ERROR(heap_->Delete(rid));
  for (auto& index : indexes_) {
    FOCUS_ASSIGN_OR_RETURN(uint64_t key, PackKeyFromTuple(index, old));
    FOCUS_RETURN_IF_ERROR(index.tree.Remove(key, rid.Pack()));
  }
  return Status::OK();
}

Status Table::Get(const storage::Rid& rid, Tuple* out) const {
  std::string record;
  FOCUS_RETURN_IF_ERROR(heap_->Get(rid, &record));
  FOCUS_ASSIGN_OR_RETURN(*out, Tuple::Deserialize(schema_, record));
  return Status::OK();
}

Status Table::Clear() {
  FOCUS_ASSIGN_OR_RETURN(storage::HeapFile heap,
                         storage::HeapFile::Create(pool_));
  heap_ = std::move(heap);
  for (auto& index : indexes_) {
    FOCUS_ASSIGN_OR_RETURN(storage::BPlusTree tree,
                           storage::BPlusTree::Create(pool_));
    index.tree = std::move(tree);
  }
  return Status::OK();
}

Status Table::IndexLookup(int index_idx, const std::vector<Value>& key,
                          std::vector<storage::Rid>* out) const {
  if (index_idx < 0 || index_idx >= num_indexes()) {
    return Status::InvalidArgument(StrCat("no index ", index_idx));
  }
  FOCUS_ASSIGN_OR_RETURN(uint64_t packed, PackKey(index_idx, key));
  std::vector<uint64_t> rids;
  FOCUS_RETURN_IF_ERROR(indexes_[index_idx].tree.GetAll(packed, &rids));
  out->reserve(out->size() + rids.size());
  for (uint64_t r : rids) out->push_back(storage::Rid::Unpack(r));
  return Status::OK();
}

int Table::IndexId(std::string_view index_name) const {
  for (int i = 0; i < num_indexes(); ++i) {
    if (indexes_[i].spec.name == index_name) return i;
  }
  return -1;
}

Status Table::ScanRecords(std::vector<std::string>* out) const {
  out->reserve(out->size() + heap_->num_records());
  storage::HeapFile::Iterator it = heap_->Scan();
  storage::Rid rid;
  std::string record;
  while (it.Next(&rid, &record)) out->push_back(record);
  return it.status();
}

bool Table::Iterator::Next(storage::Rid* rid, Tuple* tuple) {
  std::string record;
  if (!it_.Next(rid, &record)) {
    status_ = it_.status();
    return false;
  }
  auto t = Tuple::Deserialize(table_->schema_, record);
  if (!t.ok()) {
    status_ = t.status();
    return false;
  }
  *tuple = t.TakeValue();
  return true;
}

}  // namespace focus::sql
