// Typed values for the mini relational engine.
//
// Four storage types cover every table in the paper's schema (Figure 1):
// 16/32-bit ids and counters (kInt32), 64-bit oids and timestamps (kInt64),
// scores and log-probabilities (kDouble), URLs and names (kString).
// A transient NULL state exists for outer-join padding; NULLs are never
// stored in tables.
#ifndef FOCUS_SQL_VALUE_H_
#define FOCUS_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "util/status.h"

namespace focus::sql {

enum class TypeId : uint8_t { kInt32 = 0, kInt64 = 1, kDouble = 2,
                              kString = 3 };

const char* TypeName(TypeId t);

class Value {
 public:
  // Default-constructed value is a NULL int32 (placeholder).
  Value() : type_(TypeId::kInt32), null_(true) {}

  static Value Int32(int32_t v) { return Value(TypeId::kInt32, v); }
  static Value Int64(int64_t v) { return Value(TypeId::kInt64, v); }
  static Value Double(double v) { return Value(TypeId::kDouble, v); }
  static Value Str(std::string v) {
    Value out(TypeId::kString, int64_t{0});
    out.repr_ = std::move(v);
    return out;
  }
  static Value Null(TypeId type) {
    Value out;
    out.type_ = type;
    out.null_ = true;
    return out;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return null_; }

  int32_t AsInt32() const { return std::get<int32_t>(repr_); }
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  // Widening numeric read: int32/int64 as int64.
  int64_t AsIntAny() const {
    return type_ == TypeId::kInt32 ? AsInt32() : AsInt64();
  }
  // Numeric read as double (int32/int64/double).
  double AsNumeric() const;

  // Three-way comparison. Types must match; NULL sorts before everything.
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  uint64_t Hash() const;

  // Appends the wire encoding to `out` (int32: 4B, int64: 8B, double: 8B,
  // string: u16 length + bytes). NULLs cannot be serialized.
  void SerializeTo(std::string* out) const;

  // Parses one value of `type` from `data` at `*offset`, advancing it.
  static Result<Value> Deserialize(TypeId type, std::string_view data,
                                   size_t* offset);

  std::string ToString() const;

 private:
  template <typename T>
  Value(TypeId type, T v) : type_(type), null_(false), repr_(v) {}

  TypeId type_;
  bool null_;
  std::variant<int32_t, int64_t, double, std::string> repr_;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_VALUE_H_
