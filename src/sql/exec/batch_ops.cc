#include "sql/exec/batch_ops.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <numeric>

#include "util/clock.h"
#include "util/logging.h"

namespace focus::sql {

namespace {

std::atomic<obs::MetricsRegistry*> g_batch_registry{nullptr};

// Result type of a sorted-run aggregate; mirrors HashAggregate's
// AggOutputType so the two engines emit identical schemas.
TypeId SortedAggOutputType(const AggSpec& spec, const Schema& in) {
  switch (spec.kind) {
    case AggKind::kCount:
      return TypeId::kInt64;
    case AggKind::kSum:
      return in.column(spec.col).type == TypeId::kDouble ? TypeId::kDouble
                                                         : TypeId::kInt64;
    default:
      FOCUS_CHECK(false, "BatchSortedAggregate supports SUM/COUNT only");
  }
  return TypeId::kDouble;
}

// Sort fast path for up to two integer key columns with no NULLs. The
// keys are range-compressed into one order-preserving uint64 word per row
// (descending fields store max - v), so one machine-word compare decides
// the full lexicographic order; when the word is narrow, a stable LSD
// radix sort replaces the comparison sort entirely. The resulting
// permutation is exactly the stable sort under CompareRowsOnKeys. Keys
// whose combined range exceeds 64 bits fall back to sorting flat
// (key, key, index) structs with the row index as the tiebreak.
int64_t IntAt(const ColumnData& col, size_t row) {
  return col.type == TypeId::kInt32 ? static_cast<int64_t>(col.i32[row])
                                    : col.i64[row];
}

uint64_t BiasedIntKey(const ColumnData& col, size_t row, bool descending) {
  uint64_t v = static_cast<uint64_t>(IntAt(col, row));
  v ^= uint64_t{1} << 63;
  return descending ? ~v : v;
}

// Stable LSD radix sort of `packed` (in row order) over the low
// `used_bits` bits; fills `order` with the sorted permutation.
void RadixSortPacked(const std::vector<uint64_t>& packed, int used_bits,
                     std::vector<int64_t>* order) {
  size_t n = packed.size();
  std::vector<int64_t> idx(n), idx2(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (int shift = 0; shift < used_bits; shift += 8) {
    size_t count[257] = {0};
    for (size_t i = 0; i < n; ++i) {
      ++count[((packed[idx[i]] >> shift) & 0xFF) + 1];
    }
    for (int d = 0; d < 256; ++d) count[d + 1] += count[d];
    for (size_t i = 0; i < n; ++i) {
      idx2[count[(packed[idx[i]] >> shift) & 0xFF]++] = idx[i];
    }
    idx.swap(idx2);
  }
  order->swap(idx);
}

bool TrySortIntKeys(const ColumnSet& rows, const std::vector<SortKey>& keys,
                    std::vector<int64_t>* order,
                    std::vector<uint64_t>* packed_out = nullptr) {
  if (packed_out != nullptr) packed_out->clear();
  if (keys.empty() || keys.size() > 2) return false;
  for (const SortKey& key : keys) {
    const ColumnData& col = rows.col(key.col);
    if (col.type != TypeId::kInt32 && col.type != TypeId::kInt64) {
      return false;
    }
    if (!col.nulls.empty() &&
        std::any_of(col.nulls.begin(), col.nulls.end(),
                    [](uint8_t n) { return n != 0; })) {
      return false;
    }
  }
  size_t n = rows.num_rows();
  order->resize(n);
  if (n == 0) return true;

  // Per-key value ranges decide whether all keys fit one word.
  struct KeyRange {
    const ColumnData* col;
    bool desc;
    int64_t min, max;
    int bits;
  };
  std::vector<KeyRange> ranges;
  int total_bits = 0;
  for (const SortKey& key : keys) {
    const ColumnData& col = rows.col(key.col);
    int64_t lo = IntAt(col, 0), hi = lo;
    for (size_t i = 1; i < n; ++i) {
      int64_t v = IntAt(col, i);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    int bits = range == 0 ? 0 : std::bit_width(range);
    ranges.push_back(KeyRange{&col, key.descending, lo, hi, bits});
    total_bits += bits;
  }

  if (total_bits <= 64) {
    std::vector<uint64_t> packed(n);
    for (size_t i = 0; i < n; ++i) {
      uint64_t word = 0;
      for (const KeyRange& r : ranges) {
        uint64_t field = r.desc
                             ? static_cast<uint64_t>(r.max) -
                                   static_cast<uint64_t>(IntAt(*r.col, i))
                             : static_cast<uint64_t>(IntAt(*r.col, i)) -
                                   static_cast<uint64_t>(r.min);
        word = (word << r.bits) | field;
      }
      packed[i] = word;
    }
    if (n >= 512 && total_bits <= 32) {
      RadixSortPacked(packed, total_bits, order);
    } else {
      struct K1 {
        uint64_t k;
        int64_t idx;
      };
      std::vector<K1> v(n);
      for (size_t i = 0; i < n; ++i) {
        v[i] = K1{packed[i], static_cast<int64_t>(i)};
      }
      std::sort(v.begin(), v.end(), [](const K1& a, const K1& b) {
        return a.k != b.k ? a.k < b.k : a.idx < b.idx;
      });
      for (size_t i = 0; i < n; ++i) (*order)[i] = v[i].idx;
    }
    // The packing is injective, so equal words <=> equal key values;
    // callers can reuse it for group-boundary checks.
    if (packed_out != nullptr) packed_out->swap(packed);
    return true;
  }

  if (keys.size() == 1) {
    const ColumnData& col = rows.col(keys[0].col);
    bool desc = keys[0].descending;
    struct K1 {
      uint64_t k;
      int64_t idx;
    };
    std::vector<K1> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = K1{BiasedIntKey(col, i, desc), static_cast<int64_t>(i)};
    }
    std::sort(v.begin(), v.end(), [](const K1& a, const K1& b) {
      return a.k != b.k ? a.k < b.k : a.idx < b.idx;
    });
    for (size_t i = 0; i < n; ++i) (*order)[i] = v[i].idx;
  } else {
    const ColumnData& c0 = rows.col(keys[0].col);
    const ColumnData& c1 = rows.col(keys[1].col);
    bool d0 = keys[0].descending, d1 = keys[1].descending;
    struct K2 {
      uint64_t k0, k1;
      int64_t idx;
    };
    std::vector<K2> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = K2{BiasedIntKey(c0, i, d0), BiasedIntKey(c1, i, d1),
                static_cast<int64_t>(i)};
    }
    std::sort(v.begin(), v.end(), [](const K2& a, const K2& b) {
      if (a.k0 != b.k0) return a.k0 < b.k0;
      if (a.k1 != b.k1) return a.k1 < b.k1;
      return a.idx < b.idx;
    });
    for (size_t i = 0; i < n; ++i) (*order)[i] = v[i].idx;
  }
  return true;
}

double NumericAt(const ColumnData& col, size_t row) {
  switch (col.type) {
    case TypeId::kInt32:
      return static_cast<double>(col.i32[row]);
    case TypeId::kInt64:
      return static_cast<double>(col.i64[row]);
    case TypeId::kDouble:
      return col.f64[row];
    case TypeId::kString:
      break;
  }
  FOCUS_CHECK(false, "aggregate over non-numeric column");
  return 0;
}

}  // namespace

Schema SortedAggSchema(const Schema& in, const std::vector<int>& group_cols,
                       const std::vector<AggSpec>& aggs) {
  std::vector<Column> cols;
  for (int g : group_cols) cols.push_back(in.column(g));
  for (const AggSpec& a : aggs) {
    cols.push_back({a.out_name, SortedAggOutputType(a, in)});
  }
  return Schema(std::move(cols));
}

void SetBatchMetricsRegistry(obs::MetricsRegistry* registry) {
  g_batch_registry.store(registry, std::memory_order_relaxed);
}

obs::MetricsRegistry* BatchMetricsRegistry() {
  return obs::MetricsRegistry::OrGlobal(
      g_batch_registry.load(std::memory_order_relaxed));
}

void SortPermutation(const ColumnSet& rows, const std::vector<SortKey>& keys,
                     std::vector<int64_t>* order,
                     std::vector<uint64_t>* packed) {
  if (TrySortIntKeys(rows, keys, order, packed)) return;
  order->resize(rows.num_rows());
  std::iota(order->begin(), order->end(), 0);
  std::vector<ColumnPtr> cols;
  for (int i = 0; i < rows.num_columns(); ++i) {
    cols.push_back(rows.col_ptr(i));
  }
  std::stable_sort(order->begin(), order->end(),
                   [&cols, &keys](int64_t a, int64_t b) {
                     return CompareRowsOnKeys(cols, a, b, keys) < 0;
                   });
}

void MergeJoinIndices(const ColumnSet& lrows, const ColumnSet& rrows,
                      const std::vector<int>& left_keys,
                      const std::vector<int>& right_keys, bool left_outer,
                      const int64_t* lidx, size_t nl, const int64_t* ridx,
                      size_t nr, std::vector<int64_t>* li,
                      std::vector<int64_t>* ri) {
  auto lrow = [lidx](size_t p) {
    return lidx ? static_cast<size_t>(lidx[p]) : p;
  };
  auto rrow = [ridx](size_t p) {
    return ridx ? static_cast<size_t>(ridx[p]) : p;
  };
  auto key_cmp = [&](size_t l, size_t r) {
    for (size_t k = 0; k < left_keys.size(); ++k) {
      int c = CompareColumnRows(lrows.col(left_keys[k]), lrow(l),
                                rrows.col(right_keys[k]), rrow(r));
      if (c != 0) return c;
    }
    return 0;
  };
  auto right_eq = [&](size_t a, size_t b) {
    for (int key : right_keys) {
      if (CompareColumnRows(rrows.col(key), rrow(a), rrows.col(key),
                            rrow(b)) != 0) {
        return false;
      }
    }
    return true;
  };
  size_t l = 0, r = 0;
  while (l < nl) {
    if (r >= nr) {
      if (left_outer) {
        li->push_back(static_cast<int64_t>(lrow(l)));
        ri->push_back(-1);
      }
      ++l;
      continue;
    }
    int c = key_cmp(l, r);
    if (c < 0) {
      if (left_outer) {
        li->push_back(static_cast<int64_t>(lrow(l)));
        ri->push_back(-1);
      }
      ++l;
    } else if (c > 0) {
      ++r;
    } else {
      size_t rend = r + 1;
      while (rend < nr && right_eq(r, rend)) ++rend;
      // Left-major emission over the right group — the scalar MergeJoin's
      // output order.
      while (l < nl && key_cmp(l, r) == 0) {
        for (size_t rr = r; rr < rend; ++rr) {
          li->push_back(static_cast<int64_t>(lrow(l)));
          ri->push_back(static_cast<int64_t>(rrow(rr)));
        }
        ++l;
      }
      r = rend;
    }
  }
}

bool GroupsMatchSortKeys(const std::vector<int>& group_cols,
                         const std::vector<SortKey>& sort_keys) {
  return group_cols.size() == sort_keys.size() &&
         std::all_of(group_cols.begin(), group_cols.end(), [&](int g) {
           return std::any_of(sort_keys.begin(), sort_keys.end(),
                              [g](const SortKey& k) { return k.col == g; });
         });
}

void AggregateSortedRuns(const ColumnSet& rows,
                         const std::vector<int64_t>& order, size_t begin,
                         size_t end, const uint64_t* packed,
                         const std::vector<int>& group_cols,
                         const std::vector<AggSpec>& aggs, ColumnSet* out) {
  auto same_group = [&](size_t a, size_t b) {
    if (packed != nullptr) return packed[a] == packed[b];
    for (int g : group_cols) {
      if (CompareColumnRows(rows.col(g), a, rows.col(g), b) != 0) {
        return false;
      }
    }
    return true;
  };
  std::vector<double> sums(aggs.size());
  std::vector<int64_t> counts(aggs.size());
  size_t pos = begin;
  while (pos < end) {
    size_t rep = static_cast<size_t>(order[pos]);
    sums.assign(aggs.size(), 0.0);
    counts.assign(aggs.size(), 0);
    do {
      size_t row = static_cast<size_t>(order[pos]);
      for (size_t i = 0; i < aggs.size(); ++i) {
        ++counts[i];
        if (aggs[i].kind == AggKind::kSum) {
          sums[i] += NumericAt(rows.col(aggs[i].col), row);
        }
      }
      ++pos;
    } while (pos < end &&
             same_group(static_cast<size_t>(order[pos]), rep));
    for (size_t g = 0; g < group_cols.size(); ++g) {
      out->mutable_col(static_cast<int>(g))
          ->AppendFrom(rows.col(group_cols[g]), rep);
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      ColumnData* col =
          out->mutable_col(static_cast<int>(group_cols.size() + i));
      switch (aggs[i].kind) {
        case AggKind::kCount:
          col->i64.push_back(counts[i]);
          break;
        case AggKind::kSum:
          // Accumulate-in-double then cast, exactly like HashAggregate.
          if (rows.col(aggs[i].col).type == TypeId::kDouble) {
            col->f64.push_back(sums[i]);
          } else {
            col->i64.push_back(static_cast<int64_t>(sums[i]));
          }
          break;
        default:
          FOCUS_CHECK(false, "unsupported sorted aggregate");
      }
    }
  }
}

Result<bool> BatchOperator::NextBatch(Batch* out) {
  if (op_name_ == nullptr) return DoNextBatch(out);
  if (batches_total_ == nullptr) {
    obs::MetricsRegistry* reg = obs::MetricsRegistry::OrGlobal(
        g_batch_registry.load(std::memory_order_relaxed));
    batches_total_ = reg->GetCounter("focus_sql_batches_total");
    rows_per_batch_ = reg->GetHistogram("focus_sql_rows_per_batch");
    self_micros_ = reg->GetCounter("focus_sql_batch_op_micros_total",
                                   {{"op", op_name_}});
  }
  // Self time = my inclusive time minus my children's inclusive time,
  // tracked with a per-thread stack (children's NextBatch calls nest
  // inside this one).
  thread_local std::vector<uint64_t> child_micros_stack;
  child_micros_stack.push_back(0);
  Stopwatch timer;
  Result<bool> more = DoNextBatch(out);
  uint64_t total = static_cast<uint64_t>(timer.ElapsedMicros());
  uint64_t children = child_micros_stack.back();
  child_micros_stack.pop_back();
  if (!child_micros_stack.empty()) child_micros_stack.back() += total;
  self_micros_->Add(total > children ? total - children : 0);
  if (more.ok() && more.value()) {
    batches_total_->Inc();
    rows_per_batch_->Observe(out->num_rows());
  }
  return more;
}

// ---------------------------------------------------------------- scan --

BatchTableScan::BatchTableScan(const Table* table, std::vector<int> cols,
                               int batch_rows)
    : BatchOperator("table_scan"),
      table_(table),
      cols_(std::move(cols)),
      batch_rows_(batch_rows) {
  if (cols_.empty()) {
    schema_ = table_->schema();
    for (int i = 0; i < schema_.num_columns(); ++i) cols_.push_back(i);
  } else {
    std::vector<Column> pruned;
    pruned.reserve(cols_.size());
    for (int c : cols_) pruned.push_back(table_->schema().column(c));
    schema_ = Schema(std::move(pruned));
  }
}

Status BatchTableScan::Open() {
  it_.emplace(table_->Scan());
  return Status::OK();
}

Result<bool> BatchTableScan::DoNextBatch(Batch* out) {
  out->Reset();
  std::vector<ColumnPtr> cols;
  cols.reserve(cols_.size());
  for (const Column& c : schema_.columns()) {
    cols.push_back(NewColumn(c.type));
    cols.back()->Reserve(batch_rows_);
  }
  storage::Rid rid;
  int n = 0;
  while (n < batch_rows_) {
    if (!it_->Next(&rid, &row_)) {
      FOCUS_RETURN_IF_ERROR(it_->status());
      break;
    }
    for (size_t i = 0; i < cols_.size(); ++i) {
      cols[i]->AppendValue(row_.Get(cols_[i]));
    }
    ++n;
  }
  if (n == 0) return false;
  for (ColumnPtr& c : cols) out->AddColumn(std::move(c));
  return true;
}

// -------------------------------------------------------------- source --

Result<bool> BatchSource::DoNextBatch(Batch* out) {
  out->Reset();
  size_t n = set_->num_rows();
  if (pos_ >= n) return false;
  if (pos_ == 0 && n <= static_cast<size_t>(batch_rows_)) {
    // The whole set fits one batch: forward the columns zero-copy.
    for (int i = 0; i < set_->num_columns(); ++i) {
      out->AddColumn(set_->col_ptr(i));
    }
    pos_ = n;
    return true;
  }
  size_t end = std::min(n, pos_ + static_cast<size_t>(batch_rows_));
  for (int i = 0; i < set_->num_columns(); ++i) {
    ColumnPtr col = NewColumn(set_->col(i).type);
    col->Reserve(end - pos_);
    col->AppendRange(set_->col(i), pos_, end);
    out->AddColumn(std::move(col));
  }
  pos_ = end;
  return true;
}

// ------------------------------------------------------------ adapters --

Result<bool> Vectorize::DoNextBatch(Batch* out) {
  out->Reset();
  const Schema& s = child_->schema();
  int n = 0;
  while (n < batch_rows_) {
    FOCUS_ASSIGN_OR_RETURN(bool more, child_->Next(&row_));
    if (!more) break;
    out->AppendTuple(s, row_);
    ++n;
  }
  return n > 0;
}

Status Devectorize::Open() {
  pos_ = 0;
  done_ = false;
  batch_.Reset();
  return child_->Open();
}

Result<bool> Devectorize::Next(Tuple* out) {
  while (pos_ >= batch_.num_rows()) {
    if (done_) return false;
    FOCUS_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch_));
    if (!more) {
      done_ = true;
      return false;
    }
    pos_ = 0;
  }
  batch_.ToTuple(pos_++, out);
  return true;
}

// -------------------------------------------------------------- filter --

Result<bool> BatchFilter::DoNextBatch(Batch* out) {
  out->Reset();
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&in_));
    if (!more) return false;
    sel_.clear();
    pred_(in_, &sel_);
    if (sel_.empty()) continue;  // nothing qualified; pull the next batch
    if (sel_.size() == in_.num_rows()) {
      // Everything qualified: forward the columns zero-copy.
      for (int i = 0; i < in_.num_columns(); ++i) {
        out->AddColumn(in_.col_ptr(i));
      }
      return true;
    }
    for (int i = 0; i < in_.num_columns(); ++i) {
      out->AddColumn(Gather(in_.col(i), sel_));
    }
    return true;
  }
}

// ------------------------------------------------------------- project --

BatchExpr BatchExpr::Passthrough(std::string name, TypeId type, int col) {
  return BatchExpr{std::move(name), type,
                   [col](const Batch& in) { return in.col_ptr(col); }};
}

BatchProject::BatchProject(BatchOperatorPtr child,
                           std::vector<BatchExpr> exprs)
    : BatchOperator("project"),
      child_(std::move(child)),
      exprs_(std::move(exprs)) {
  std::vector<Column> cols;
  cols.reserve(exprs_.size());
  for (const BatchExpr& e : exprs_) cols.push_back({e.name, e.type});
  schema_ = Schema(std::move(cols));
}

Result<bool> BatchProject::DoNextBatch(Batch* out) {
  out->Reset();
  FOCUS_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&in_));
  if (!more) return false;
  for (const BatchExpr& e : exprs_) out->AddColumn(e.eval(in_));
  return true;
}

// ---------------------------------------------------------------- sort --

Status BatchSort::Open() {
  rows_ = ColumnSet(child_->schema());
  order_.clear();
  pos_ = 0;
  loaded_ = false;
  return child_->Open();
}

void BatchSort::Close() {
  rows_ = ColumnSet();
  order_.clear();
  child_->Close();
}

Result<bool> BatchSort::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    Batch b;
    for (;;) {
      FOCUS_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&b));
      if (!more) break;
      rows_.AppendBatch(b);
    }
    SortPermutation(rows_, keys_, &order_, &packed_);
  }
  if (pos_ >= order_.size()) return false;
  size_t end = std::min(order_.size(), pos_ + static_cast<size_t>(batch_rows_));
  for (int i = 0; i < rows_.num_columns(); ++i) {
    out->AddColumn(Gather(rows_.col(i), order_.data() + pos_, end - pos_));
  }
  pos_ = end;
  return true;
}

// ---------------------------------------------------------- merge join --

BatchMergeJoin::BatchMergeJoin(BatchOperatorPtr left, BatchOperatorPtr right,
                               std::vector<int> left_keys,
                               std::vector<int> right_keys, bool left_outer,
                               int batch_rows)
    : BatchOperator("merge_join"),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      left_outer_(left_outer),
      batch_rows_(batch_rows),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status BatchMergeJoin::Open() {
  lrows_ = ColumnSet(left_->schema());
  rrows_ = ColumnSet(right_->schema());
  li_.clear();
  ri_.clear();
  pos_ = 0;
  merged_ = false;
  FOCUS_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

void BatchMergeJoin::Close() {
  lrows_ = ColumnSet();
  rrows_ = ColumnSet();
  li_.clear();
  ri_.clear();
  left_->Close();
  right_->Close();
}

Status BatchMergeJoin::Merge() {
  Batch b;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, left_->NextBatch(&b));
    if (!more) break;
    lrows_.AppendBatch(b);
  }
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, right_->NextBatch(&b));
    if (!more) break;
    rrows_.AppendBatch(b);
  }
  MergeJoinIndices(lrows_, rrows_, left_keys_, right_keys_, left_outer_,
                   nullptr, lrows_.num_rows(), nullptr, rrows_.num_rows(),
                   &li_, &ri_);
  return Status::OK();
}

Result<bool> BatchMergeJoin::DoNextBatch(Batch* out) {
  out->Reset();
  if (!merged_) {
    merged_ = true;
    FOCUS_RETURN_IF_ERROR(Merge());
  }
  if (pos_ >= li_.size()) return false;
  size_t end = std::min(li_.size(), pos_ + static_cast<size_t>(batch_rows_));
  size_t n = end - pos_;
  for (int i = 0; i < lrows_.num_columns(); ++i) {
    out->AddColumn(Gather(lrows_.col(i), li_.data() + pos_, n));
  }
  for (int i = 0; i < rrows_.num_columns(); ++i) {
    out->AddColumn(Gather(rrows_.col(i), ri_.data() + pos_, n));
  }
  pos_ = end;
  return true;
}

// ---------------------------------------------------------- probe join --

DenseRunTable BuildDenseRunTable(const ColumnData& rk, int64_t domain) {
  DenseRunTable t;
  t.lo.assign(static_cast<size_t>(domain), 0);
  t.hi.assign(static_cast<size_t>(domain), 0);
  const size_t nr = rk.size();
  size_t j = 0;
  while (j < nr) {
    int32_t code = rk.i32[j];
    size_t end = j + 1;
    while (end < nr && rk.i32[end] == code) ++end;
    FOCUS_DCHECK(code >= 0 && code < domain);
    t.lo[code] = static_cast<int64_t>(j);
    t.hi[code] = static_cast<int64_t>(end);
    j = end;
  }
  return t;
}

void ProbeJoinIndices(const ColumnSet& lrows, const ColumnSet& rrows,
                      int left_key, int right_key, bool left_outer,
                      const DenseRunTable* dense, size_t lbegin, size_t lend,
                      std::vector<int64_t>* li, std::vector<int64_t>* ri) {
  const ColumnData& lk = lrows.col(left_key);
  const ColumnData& rk = rrows.col(right_key);
  const size_t nr = rrows.num_rows();

  size_t i = lbegin;
  size_t rpos = 0;  // both sides ascend, so searches never look back
  while (i < lend) {
    size_t run_end = i + 1;
    while (run_end < lend && CompareColumnRows(lk, run_end, lk, i) == 0) {
      ++run_end;
    }
    size_t rlo = 0, rhi = 0;
    if (dense != nullptr) {
      int32_t code = lk.IsNull(i) ? -1 : lk.i32[i];
      if (code >= 0 && code < static_cast<int64_t>(dense->lo.size())) {
        rlo = static_cast<size_t>(dense->lo[code]);
        rhi = static_cast<size_t>(dense->hi[code]);
      }
    } else {
      size_t lo = rpos, hi = nr;
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (CompareColumnRows(rk, mid, lk, i) < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      rlo = lo;
      hi = nr;
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (CompareColumnRows(rk, mid, lk, i) <= 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      rhi = lo;
      rpos = rhi;
    }
    // Left-major within the key group — MergeJoinIndices' emission order.
    for (size_t l = i; l < run_end; ++l) {
      if (rlo == rhi) {
        if (left_outer) {
          li->push_back(static_cast<int64_t>(l));
          ri->push_back(-1);
        }
        continue;
      }
      for (size_t r = rlo; r < rhi; ++r) {
        li->push_back(static_cast<int64_t>(l));
        ri->push_back(static_cast<int64_t>(r));
      }
    }
    i = run_end;
  }
}

BatchProbeJoin::BatchProbeJoin(BatchOperatorPtr left, BatchOperatorPtr right,
                               int left_key, int right_key, bool left_outer,
                               int64_t dense_domain, int batch_rows)
    : BatchOperator("probe_join"),
      left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key),
      left_outer_(left_outer),
      dense_domain_(dense_domain),
      batch_rows_(batch_rows),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status BatchProbeJoin::Open() {
  lrows_ = ColumnSet(left_->schema());
  rrows_ = ColumnSet(right_->schema());
  li_.clear();
  ri_.clear();
  pos_ = 0;
  probed_ = false;
  FOCUS_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

void BatchProbeJoin::Close() {
  lrows_ = ColumnSet();
  rrows_ = ColumnSet();
  li_.clear();
  ri_.clear();
  left_->Close();
  right_->Close();
}

Status BatchProbeJoin::Probe() {
  Batch b;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, left_->NextBatch(&b));
    if (!more) break;
    lrows_.AppendBatch(b);
  }
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, right_->NextBatch(&b));
    if (!more) break;
    rrows_.AppendBatch(b);
  }
  DenseRunTable table;
  if (dense_domain_ > 0) {
    table = BuildDenseRunTable(rrows_.col(right_key_), dense_domain_);
  }
  ProbeJoinIndices(lrows_, rrows_, left_key_, right_key_, left_outer_,
                   dense_domain_ > 0 ? &table : nullptr, 0,
                   lrows_.num_rows(), &li_, &ri_);
  return Status::OK();
}

Result<bool> BatchProbeJoin::DoNextBatch(Batch* out) {
  out->Reset();
  if (!probed_) {
    probed_ = true;
    FOCUS_RETURN_IF_ERROR(Probe());
  }
  if (pos_ >= li_.size()) return false;
  size_t end = std::min(li_.size(), pos_ + static_cast<size_t>(batch_rows_));
  size_t n = end - pos_;
  for (int i = 0; i < lrows_.num_columns(); ++i) {
    out->AddColumn(Gather(lrows_.col(i), li_.data() + pos_, n));
  }
  for (int i = 0; i < rrows_.num_columns(); ++i) {
    out->AddColumn(Gather(rrows_.col(i), ri_.data() + pos_, n));
  }
  pos_ = end;
  return true;
}

// ---------------------------------------------- dictionary predicates --

BatchPredicate CodeRangePredicate(int col, int32_t lo_code,
                                  int32_t hi_code) {
  return [col, lo_code, hi_code](const Batch& in,
                                 std::vector<int64_t>* sel) {
    const ColumnData& c = in.col(col);
    for (size_t i = 0; i < c.i32.size(); ++i) {
      int32_t v = c.i32[i];
      if (v >= lo_code && v < hi_code && !c.IsNull(i)) {
        sel->push_back(static_cast<int64_t>(i));
      }
    }
  };
}

BatchPredicate DomainMembershipPredicate(int col, ColumnPtr domain) {
  return [col, domain = std::move(domain)](const Batch& in,
                                           std::vector<int64_t>* sel) {
    const ColumnData& c = in.col(col);
    const ColumnData& d = *domain;
    const size_t n = c.size();
    if (d.type == TypeId::kInt64 && c.type == TypeId::kInt64 &&
        !c.has_nulls()) {
      for (size_t i = 0; i < n; ++i) {
        if (std::binary_search(d.i64.begin(), d.i64.end(), c.i64[i])) {
          sel->push_back(static_cast<int64_t>(i));
        }
      }
      return;
    }
    const size_t nd = d.size();
    for (size_t i = 0; i < n; ++i) {
      if (c.IsNull(i)) continue;
      size_t lo = 0, hi = nd;
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (CompareColumnRows(d, mid, c, i) < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < nd && CompareColumnRows(d, lo, c, i) == 0) {
        sel->push_back(static_cast<int64_t>(i));
      }
    }
  };
}

// ---------------------------------------------------------- cross join --

BatchCrossJoin::BatchCrossJoin(BatchOperatorPtr left, BatchOperatorPtr right,
                               int batch_rows)
    : BatchOperator("cross_join"),
      left_(std::move(left)),
      right_(std::move(right)),
      batch_rows_(batch_rows),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status BatchCrossJoin::Open() {
  lrows_ = ColumnSet(left_->schema());
  rrows_ = ColumnSet(right_->schema());
  pos_ = 0;
  loaded_ = false;
  FOCUS_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

void BatchCrossJoin::Close() {
  lrows_ = ColumnSet();
  rrows_ = ColumnSet();
  left_->Close();
  right_->Close();
}

Result<bool> BatchCrossJoin::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    Batch b;
    for (;;) {
      FOCUS_ASSIGN_OR_RETURN(bool more, left_->NextBatch(&b));
      if (!more) break;
      lrows_.AppendBatch(b);
    }
    for (;;) {
      FOCUS_ASSIGN_OR_RETURN(bool more, right_->NextBatch(&b));
      if (!more) break;
      rrows_.AppendBatch(b);
    }
  }
  size_t nr = rrows_.num_rows();
  size_t total = lrows_.num_rows() * nr;
  if (pos_ >= total) return false;
  size_t end = std::min(total, pos_ + static_cast<size_t>(batch_rows_));
  size_t n = end - pos_;
  std::vector<int64_t> li(n), ri(n);
  for (size_t k = 0; k < n; ++k) {
    li[k] = static_cast<int64_t>((pos_ + k) / nr);
    ri[k] = static_cast<int64_t>((pos_ + k) % nr);
  }
  for (int i = 0; i < lrows_.num_columns(); ++i) {
    out->AddColumn(Gather(lrows_.col(i), li));
  }
  for (int i = 0; i < rrows_.num_columns(); ++i) {
    out->AddColumn(Gather(rrows_.col(i), ri));
  }
  pos_ = end;
  return true;
}

// ---------------------------------------------------- sorted aggregate --

BatchSortedAggregate::BatchSortedAggregate(BatchOperatorPtr child,
                                           std::vector<int> group_cols,
                                           std::vector<AggSpec> aggs,
                                           int batch_rows)
    : BatchOperator("sorted_aggregate"),
      child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      batch_rows_(batch_rows) {
  schema_ = SortedAggSchema(child_->schema(), group_cols_, aggs_);
}

Status BatchSortedAggregate::Open() {
  in_pos_ = 0;
  in_valid_ = false;
  input_done_ = false;
  group_open_ = false;
  return child_->Open();
}

void BatchSortedAggregate::EmitGroup(Batch* out) {
  for (size_t g = 0; g < group_cols_.size(); ++g) {
    out->mutable_col(static_cast<int>(g))->AppendValue(group_key_[g]);
  }
  const Schema& in = child_->schema();
  for (size_t i = 0; i < aggs_.size(); ++i) {
    ColumnData* col = out->mutable_col(static_cast<int>(group_cols_.size() + i));
    switch (aggs_[i].kind) {
      case AggKind::kCount:
        col->i64.push_back(counts_[i]);
        break;
      case AggKind::kSum:
        // Accumulate-in-double then cast, exactly like HashAggregate.
        if (in.column(aggs_[i].col).type == TypeId::kDouble) {
          col->f64.push_back(sums_[i]);
        } else {
          col->i64.push_back(static_cast<int64_t>(sums_[i]));
        }
        break;
      default:
        FOCUS_CHECK(false, "unsupported sorted aggregate");
    }
  }
  group_open_ = false;
}

Result<bool> BatchSortedAggregate::DoNextBatch(Batch* out) {
  out->Reset();
  for (const Column& c : schema_.columns()) {
    ColumnPtr col = NewColumn(c.type);
    out->AddColumn(std::move(col));
  }
  while (out->num_rows() < static_cast<size_t>(batch_rows_)) {
    if (!in_valid_) {
      if (input_done_) break;
      FOCUS_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&in_));
      if (!more) {
        input_done_ = true;
        break;
      }
      in_pos_ = 0;
      in_valid_ = in_.num_rows() > 0;
      continue;
    }
    // Group boundary?
    bool boundary = false;
    if (group_open_) {
      for (size_t g = 0; g < group_cols_.size(); ++g) {
        Value v = in_.ValueAt(in_pos_, group_cols_[g]);
        if (group_key_[g].Compare(v) != 0) {
          boundary = true;
          break;
        }
      }
    }
    if (boundary) {
      EmitGroup(out);
      continue;  // re-examine the same row as the new group's first
    }
    if (!group_open_) {
      group_open_ = true;
      group_key_.clear();
      for (int g : group_cols_) group_key_.push_back(in_.ValueAt(in_pos_, g));
      sums_.assign(aggs_.size(), 0.0);
      counts_.assign(aggs_.size(), 0);
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      ++counts_[i];
      if (aggs_[i].kind == AggKind::kSum) {
        sums_[i] += NumericAt(in_.col(aggs_[i].col), in_pos_);
      }
    }
    if (++in_pos_ >= in_.num_rows()) in_valid_ = false;
  }
  if (input_done_ && !in_valid_ && group_open_ &&
      out->num_rows() < static_cast<size_t>(batch_rows_)) {
    EmitGroup(out);
  }
  return out->num_rows() > 0;
}

// ---------------------------------------------------- sort + aggregate --

BatchSortAggregate::BatchSortAggregate(BatchOperatorPtr child,
                                       std::vector<SortKey> sort_keys,
                                       std::vector<int> group_cols,
                                       std::vector<AggSpec> aggs,
                                       int batch_rows)
    : BatchOperator("sort_aggregate"),
      child_(std::move(child)),
      sort_keys_(std::move(sort_keys)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      batch_rows_(batch_rows),
      schema_(SortedAggSchema(child_->schema(), group_cols_, aggs_)) {}

Status BatchSortAggregate::Open() {
  rows_ = ColumnSet(child_->schema());
  agg_ = ColumnSet();
  pos_ = 0;
  loaded_ = false;
  return child_->Open();
}

void BatchSortAggregate::Close() {
  rows_ = ColumnSet();
  agg_ = ColumnSet();
  child_->Close();
}

Result<bool> BatchSortAggregate::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    Batch b;
    for (;;) {
      FOCUS_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&b));
      if (!more) break;
      rows_.AppendBatch(b);
    }
    std::vector<int64_t> order;
    std::vector<uint64_t> packed;
    SortPermutation(rows_, sort_keys_, &order, &packed);
    // When the sort produced injective packed keys and the group columns
    // are exactly the sort key columns, one word compare decides the group
    // boundary; otherwise compare the group columns directly.
    bool use_packed =
        !packed.empty() && GroupsMatchSortKeys(group_cols_, sort_keys_);
    agg_ = ColumnSet(schema_);
    AggregateSortedRuns(rows_, order, 0, order.size(),
                        use_packed ? packed.data() : nullptr, group_cols_,
                        aggs_, &agg_);
    rows_ = ColumnSet();
  }
  size_t n = agg_.num_rows();
  if (pos_ >= n) return false;
  size_t end = std::min(n, pos_ + static_cast<size_t>(batch_rows_));
  for (int i = 0; i < agg_.num_columns(); ++i) {
    ColumnPtr col = NewColumn(agg_.col(i).type);
    col->Reserve(end - pos_);
    col->AppendRange(agg_.col(i), pos_, end);
    out->AddColumn(std::move(col));
  }
  pos_ = end;
  return true;
}

// ------------------------------------------------------------- helpers --

Status CollectInto(BatchOperator* op, ColumnSet* out) {
  *out = ColumnSet(op->schema());
  FOCUS_RETURN_IF_ERROR(op->Open());
  Batch b;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, op->NextBatch(&b));
    if (!more) break;
    out->AppendBatch(b);
  }
  op->Close();
  return Status::OK();
}

}  // namespace focus::sql
