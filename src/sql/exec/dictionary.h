// Column-level dictionary encoding (exemplar: Hyrise DictionaryCompression).
//
// A ColumnDictionary holds the distinct non-NULL values of one column,
// sorted ascending by Value::Compare; a row's code is its value's position
// in that order. Codes are plain int32 stored in an ordinary kInt32
// ColumnData, so every existing batch/parallel operator — filter, sort,
// merge join, sorted-run aggregate, radix partitioning — runs on codes
// unchanged. Because the dictionary is sorted, the value→code mapping is
// strictly monotonic: sorting by code is sorting by value, equal codes are
// equal values, and range predicates become code-range comparisons after
// one binary search into the dictionary. NULL encodes as kNullCode (-1),
// which sorts before every valid code exactly as NULL sorts before every
// value, so NULL-first sort order survives encoding too.
//
// Encoding against a *foreign* dictionary (the other side of a join, a
// shared domain from UnifyDictionaries) marks values absent from it with
// kMissingCode (-2); such rows can never match an inner join on the
// dictionary's domain and are filtered before joining.
//
// Late materialization: DecodeColumn / EncodedColumnSet::Materialize map
// codes back to exact original values at plan output. Decoding always
// allocates a fresh ColumnData per output column — never a shared fill —
// so downstream mutation of one materialized column cannot alias another
// (the PR-6 ColumnSet shared_ptr aliasing bug class).
#ifndef FOCUS_SQL_EXEC_DICTIONARY_H_
#define FOCUS_SQL_EXEC_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sql/exec/batch.h"

namespace focus::sql {

class ColumnDictionary;
using DictionaryPtr = std::shared_ptr<const ColumnDictionary>;

class ColumnDictionary {
 public:
  static constexpr int32_t kNullCode = -1;
  static constexpr int32_t kMissingCode = -2;

  // Builds from the distinct non-NULL values of `col` (any order, NULLs
  // and duplicates allowed).
  static DictionaryPtr Build(const ColumnData& col);
  // Builds from a column already sorted ascending (NULLs first) in one
  // linear run-collapsing pass — used on join keys the plan has already
  // sorted, where a second sort would be wasted work.
  static DictionaryPtr BuildFromSorted(const ColumnData& col);

  TypeId value_type() const { return values_->type; }
  // Number of distinct non-NULL values (= the exact distinct count the
  // cost model consumes).
  int32_t size() const { return static_cast<int32_t>(values_->size()); }

  // Value of a code in [0, size()); negative codes return NULL.
  Value ValueOf(int32_t code) const;
  // Code of `v`, kMissingCode if absent, kNullCode for NULL.
  int32_t CodeOf(const Value& v) const;
  // First code whose value is >= / > `v` (size() if none) — the dictionary
  // probe that turns a value-range predicate into a code-range predicate.
  int32_t LowerBound(const Value& v) const;
  int32_t UpperBound(const Value& v) const;

  // The sorted value column itself (no NULLs).
  const ColumnData& values() const { return *values_; }

 private:
  explicit ColumnDictionary(ColumnPtr values) : values_(std::move(values)) {}

  ColumnPtr values_;
};

// Encodes `col` against `dict`: returns a kInt32 code column of the same
// length (no nulls vector; NULL rows become kNullCode, values absent from
// `dict` become kMissingCode).
ColumnPtr EncodeColumn(const ColumnData& col, const ColumnDictionary& dict);

// EncodeColumn for a column sorted ascending: one merge pass over column
// and dictionary, O(rows + dict size) instead of a binary search per row.
ColumnPtr EncodeSortedColumn(const ColumnData& col,
                             const ColumnDictionary& dict);

// Maps codes back to values: a fresh column of the dictionary's value
// type; negative codes decode to NULL (callers filter kMissingCode before
// any inner join, so only outer-join padding reaches decode as NULL).
ColumnPtr DecodeColumn(const ColumnData& codes, const ColumnDictionary& dict);

// A shared code domain for joining two independently encoded columns: the
// sorted union of both value sets plus per-side old-code → merged-code
// remaps. Both remaps are strictly increasing, so remapped code columns
// keep their sort order and equal merged codes mean equal values across
// sides.
struct UnifiedDictionary {
  DictionaryPtr dict;
  std::vector<int32_t> left_map;
  std::vector<int32_t> right_map;

  // Remaps a code column into the merged domain (negative codes pass
  // through). `left` selects which side's map applies.
  ColumnPtr Remap(const ColumnData& codes, bool left) const;
};
UnifiedDictionary UnifyDictionaries(const ColumnDictionary& left,
                                    const ColumnDictionary& right);

// Per-column facts the encoder collects in passing; the cost model's
// stats inputs (row count, distinct count → join selectivity).
struct ColumnStats {
  uint64_t rows = 0;
  uint64_t distinct = 0;  // distinct non-NULL values (0 when not computed)
  uint64_t nulls = 0;
  bool encoded = false;
};

// Encoding policy at materialization time. Doubles default to unencoded
// (measurements rarely repeat; a dictionary would be as large as the
// column), and max_distinct_fraction opts out near-unique columns where
// codes would cost space without shrinking anything.
struct EncodeOptions {
  bool encode_ints = true;
  bool encode_strings = true;
  bool encode_doubles = false;
  double max_distinct_fraction = 1.0;  // opt out above this distinct/rows
  std::vector<int> skip_columns;       // explicit per-column opt-out
};

// A dictionary-encoded materialized rowset, built from a ColumnSet at
// table-materialization time. Per column either (dictionary, code vector)
// or the original column forwarded untouched (opt-out / unsupported /
// too distinct). code_view() is the rowset the engines execute on:
// encoded columns appear as their kInt32 code columns (same positions,
// same row order), plain columns are shared zero-copy.
class EncodedColumnSet {
 public:
  static EncodedColumnSet FromColumnSet(const ColumnSet& rows,
                                        const EncodeOptions& opts = {});

  const Schema& schema() const { return schema_; }  // original value schema
  size_t num_rows() const { return code_view_.num_rows(); }
  int num_columns() const { return static_cast<int>(dicts_.size()); }

  bool encoded(int col) const { return dicts_[col] != nullptr; }
  const DictionaryPtr& dict(int col) const { return dicts_[col]; }
  const ColumnStats& stats(int col) const { return stats_[col]; }

  // The code-domain image the batch/parallel operators run on directly.
  const ColumnSet& code_view() const { return code_view_; }

  // Late materialization of one code_view column (or of the same-position
  // column of any rowset derived from it, e.g. a join output) back to
  // values. Always a freshly allocated column.
  ColumnPtr Materialize(int col) const {
    return MaterializeFrom(code_view_.col(col), col);
  }
  ColumnPtr MaterializeFrom(const ColumnData& codes_or_values,
                            int col) const;

 private:
  Schema schema_;
  ColumnSet code_view_;
  std::vector<DictionaryPtr> dicts_;
  std::vector<ColumnStats> stats_;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_DICTIONARY_H_
