#include "sql/exec/cost_model.h"

#include <algorithm>
#include <cmath>

#include "sql/exec/batch_ops.h"

namespace focus::sql {

namespace {

// Unit costs per row touch, calibrated against the measured-fastest
// matrix in sql_cost_model_test (Fig-8 shapes): sequential scans are the
// baseline, merge steps pay a typed compare, binary-search probes pay
// random access, dense run-table probes are near-free after a sequential
// build, hashing pays insert/lookup, and exceeding the buffer budget
// multiplies whatever touches the inner side at random.
constexpr double kSeqTouch = 1.0;     // sequential scan, per row
constexpr double kMergeTouch = 1.5;   // merge step compare, per row
constexpr double kSortTouch = 0.25;   // per row·log2(rows) when unsorted
constexpr double kProbeTouch = 4.0;   // binary-search step, per level
constexpr double kDenseBuild = 0.5;   // dense run-table build, per slot
constexpr double kHashBuild = 2.0;    // hash-table insert, per inner row
constexpr double kHashProbe = 1.25;   // hash lookup, per outer row
constexpr double kOutTouch = 0.5;     // output gather, per emitted row
constexpr double kColdProbe = 6.0;    // inner exceeds buffer: probes miss
constexpr double kSpillTouch = 2.0;   // hash spill: partition + re-read

double Log2AtLeast1(uint64_t n) {
  return std::log2(static_cast<double>(std::max<uint64_t>(n, 2)));
}

double SortCost(uint64_t rows, bool sorted) {
  if (sorted || rows == 0) return 0;
  return kSortTouch * static_cast<double>(rows) * Log2AtLeast1(rows);
}

bool OverBudget(const JoinStats& s) {
  return s.buffer_bytes > 0 && s.right_bytes > s.buffer_bytes;
}

}  // namespace

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kIndexProbe:
      return "index-probe";
    case AccessPath::kSortMerge:
      return "sort-merge";
    case AccessPath::kHashJoin:
      return "hash";
  }
  return "?";
}

uint64_t EstimateJoinRows(const JoinStats& s) {
  if (s.left_rows == 0 || s.right_rows == 0) return 0;
  uint64_t dl = s.left_distinct ? s.left_distinct : s.left_rows;
  uint64_t dr = s.right_distinct ? s.right_distinct : s.right_rows;
  double d = static_cast<double>(std::max<uint64_t>(std::max(dl, dr), 1));
  double est = static_cast<double>(s.left_rows) *
               static_cast<double>(s.right_rows) / d;
  return static_cast<uint64_t>(std::max(1.0, est));
}

double JoinPathCost(AccessPath path, const JoinStats& s) {
  const double l = static_cast<double>(s.left_rows);
  const double r = static_cast<double>(s.right_rows);
  const double out =
      kOutTouch * static_cast<double>(EstimateJoinRows(s));
  const double sorts =
      SortCost(s.left_rows, s.left_sorted) +
      SortCost(s.right_rows, s.right_sorted);
  switch (path) {
    case AccessPath::kSortMerge:
      return sorts + kMergeTouch * (l + r) + out;
    case AccessPath::kIndexProbe: {
      // One search per distinct outer key run; matched runs are emitted
      // sequentially either way. A dense code domain replaces searches
      // with a run table built in one pass over inner + domain.
      double runs = static_cast<double>(
          s.left_distinct ? s.left_distinct : s.left_rows);
      double search;
      if (s.right_domain > 0) {
        search = kDenseBuild *
                 (r + static_cast<double>(s.right_domain));
      } else {
        search = kProbeTouch * runs * Log2AtLeast1(s.right_rows);
      }
      if (OverBudget(s)) search *= kColdProbe;
      return sorts + kSeqTouch * l + search + out;
    }
    case AccessPath::kHashJoin: {
      double cost = kHashBuild * r + kHashProbe * l + out;
      if (OverBudget(s)) cost += kSpillTouch * (l + r);
      return cost;
    }
  }
  return 0;
}

PathChoice ChooseJoinPath(const JoinStats& s,
                          std::initializer_list<AccessPath> allowed) {
  PathChoice best;
  bool first = true;
  for (AccessPath p : allowed) {
    double cost = JoinPathCost(p, s);
    if (first || cost < best.cost) {
      best.path = p;
      best.cost = cost;
      first = false;
    }
  }
  best.est_rows = EstimateJoinRows(s);
  return best;
}

void RecordPathChoice(const char* node, const PathChoice& choice) {
  obs::MetricsRegistry* reg = BatchMetricsRegistry();
  reg->GetCounter("focus_sql_cost_path_total",
                  {{"node", node}, {"path", AccessPathName(choice.path)}})
      ->Inc();
  reg->GetCounter("focus_sql_cost_est_rows_total", {{"node", node}})
      ->Add(choice.est_rows);
}

void RecordActualRows(const char* node, uint64_t rows) {
  BatchMetricsRegistry()
      ->GetCounter("focus_sql_cost_actual_rows_total", {{"node", node}})
      ->Add(rows);
}

namespace {

class ActualRowsCounter final : public BatchOperator {
 public:
  ActualRowsCounter(const char* node, BatchOperatorPtr child)
      : BatchOperator(nullptr), node_(node), child_(std::move(child)) {}

  Status Open() override {
    rows_ = 0;
    recorded_ = false;
    return child_->Open();
  }

  void Close() override {
    if (!recorded_) {
      recorded_ = true;
      RecordActualRows(node_, rows_);
    }
    child_->Close();
  }

  const Schema& schema() const override { return child_->schema(); }
  const ParallelOpStats* parallel_stats() const override {
    return child_->parallel_stats();
  }

 protected:
  Result<bool> DoNextBatch(Batch* out) override {
    Result<bool> more = child_->NextBatch(out);
    if (more.ok() && more.value()) rows_ += out->num_rows();
    return more;
  }

 private:
  const char* node_;
  BatchOperatorPtr child_;
  uint64_t rows_ = 0;
  bool recorded_ = false;
};

}  // namespace

BatchOperatorPtr CountActualRows(const char* node, BatchOperatorPtr child) {
  return std::make_unique<ActualRowsCounter>(node, std::move(child));
}

}  // namespace focus::sql
