#include "sql/exec/dictionary.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "util/logging.h"

namespace focus::sql {

namespace {

// One-row column holding `v`, the needle for generic binary searches.
ColumnData NeedleColumn(TypeId type, const Value& v) {
  ColumnData needle(type);
  needle.AppendValue(v);
  return needle;
}

template <typename T>
void SortUniqueInto(std::vector<T> vals, std::vector<T>* out) {
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  *out = std::move(vals);
}

template <typename T>
std::vector<T> ValidRows(const std::vector<T>& v,
                         const std::vector<uint8_t>& nulls) {
  if (nulls.empty()) return v;
  std::vector<T> out;
  out.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (!nulls[i]) out.push_back(v[i]);
  }
  return out;
}

}  // namespace

DictionaryPtr ColumnDictionary::Build(const ColumnData& col) {
  ColumnPtr values = NewColumn(col.type);
  switch (col.type) {
    case TypeId::kInt32:
      SortUniqueInto(ValidRows(col.i32, col.nulls), &values->i32);
      break;
    case TypeId::kInt64:
      SortUniqueInto(ValidRows(col.i64, col.nulls), &values->i64);
      break;
    case TypeId::kDouble:
      SortUniqueInto(ValidRows(col.f64, col.nulls), &values->f64);
      break;
    case TypeId::kString: {
      std::vector<std::string_view> svs;
      svs.reserve(col.size());
      for (size_t i = 0; i < col.size(); ++i) {
        if (!col.IsNull(i)) svs.push_back(col.StringAt(i));
      }
      std::sort(svs.begin(), svs.end());
      svs.erase(std::unique(svs.begin(), svs.end()), svs.end());
      for (std::string_view sv : svs) {
        values->arena.append(sv);
        values->str_offsets.push_back(
            static_cast<uint32_t>(values->arena.size()));
      }
      break;
    }
  }
  return DictionaryPtr(new ColumnDictionary(std::move(values)));
}

DictionaryPtr ColumnDictionary::BuildFromSorted(const ColumnData& col) {
  ColumnPtr values = NewColumn(col.type);
  const size_t n = col.size();
  for (size_t i = 0; i < n; ++i) {
    if (col.IsNull(i)) continue;  // NULLs sort first; skip the prefix
    if (values->size() == 0 ||
        CompareColumnRows(*values, values->size() - 1, col, i) != 0) {
      FOCUS_DCHECK(values->size() == 0 ||
                   CompareColumnRows(*values, values->size() - 1, col, i) < 0);
      values->AppendFrom(col, i);
    }
  }
  return DictionaryPtr(new ColumnDictionary(std::move(values)));
}

Value ColumnDictionary::ValueOf(int32_t code) const {
  if (code < 0) return Value::Null(value_type());
  return values_->ValueAt(static_cast<size_t>(code));
}

int32_t ColumnDictionary::LowerBound(const Value& v) const {
  if (v.is_null()) return 0;
  switch (value_type()) {
    case TypeId::kInt32:
      return static_cast<int32_t>(
          std::lower_bound(values_->i32.begin(), values_->i32.end(),
                           v.AsInt32()) -
          values_->i32.begin());
    case TypeId::kInt64:
      return static_cast<int32_t>(
          std::lower_bound(values_->i64.begin(), values_->i64.end(),
                           v.AsInt64()) -
          values_->i64.begin());
    case TypeId::kDouble:
      return static_cast<int32_t>(
          std::lower_bound(values_->f64.begin(), values_->f64.end(),
                           v.AsDouble()) -
          values_->f64.begin());
    case TypeId::kString: {
      std::string_view needle = v.AsString();
      int32_t lo = 0, hi = size();
      while (lo < hi) {
        int32_t mid = lo + (hi - lo) / 2;
        if (values_->StringAt(mid) < needle) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  }
  return size();
}

int32_t ColumnDictionary::UpperBound(const Value& v) const {
  if (v.is_null()) return 0;
  int32_t lo = LowerBound(v);
  if (lo < size()) {
    ColumnData needle = NeedleColumn(value_type(), v);
    if (CompareColumnRows(*values_, lo, needle, 0) == 0) return lo + 1;
  }
  return lo;
}

int32_t ColumnDictionary::CodeOf(const Value& v) const {
  if (v.is_null()) return kNullCode;
  int32_t lo = LowerBound(v);
  if (lo >= size()) return kMissingCode;
  ColumnData needle = NeedleColumn(value_type(), v);
  return CompareColumnRows(*values_, lo, needle, 0) == 0 ? lo : kMissingCode;
}

ColumnPtr EncodeColumn(const ColumnData& col, const ColumnDictionary& dict) {
  FOCUS_CHECK(col.type == dict.value_type());
  ColumnPtr codes = NewColumn(TypeId::kInt32);
  const size_t n = col.size();
  codes->i32.reserve(n);
  const ColumnData& values = dict.values();
  const int32_t d = dict.size();
  for (size_t i = 0; i < n; ++i) {
    if (col.IsNull(i)) {
      codes->i32.push_back(ColumnDictionary::kNullCode);
      continue;
    }
    int32_t lo = 0, hi = d;
    while (lo < hi) {
      int32_t mid = lo + (hi - lo) / 2;
      if (CompareColumnRows(values, mid, col, i) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    codes->i32.push_back(lo < d && CompareColumnRows(values, lo, col, i) == 0
                             ? lo
                             : ColumnDictionary::kMissingCode);
  }
  return codes;
}

ColumnPtr EncodeSortedColumn(const ColumnData& col,
                             const ColumnDictionary& dict) {
  FOCUS_CHECK(col.type == dict.value_type());
  ColumnPtr codes = NewColumn(TypeId::kInt32);
  const size_t n = col.size();
  codes->i32.reserve(n);
  const ColumnData& values = dict.values();
  const int32_t d = dict.size();
  int32_t c = 0;  // dictionary cursor; both sequences ascend
  for (size_t i = 0; i < n; ++i) {
    if (col.IsNull(i)) {
      codes->i32.push_back(ColumnDictionary::kNullCode);
      continue;
    }
    while (c < d && CompareColumnRows(values, c, col, i) < 0) ++c;
    codes->i32.push_back(c < d && CompareColumnRows(values, c, col, i) == 0
                             ? c
                             : ColumnDictionary::kMissingCode);
  }
  return codes;
}

ColumnPtr DecodeColumn(const ColumnData& codes, const ColumnDictionary& dict) {
  FOCUS_CHECK(codes.type == TypeId::kInt32);
  // Fresh column per call: decode output is never a shared fill of one
  // buffer, so mutating one materialized column cannot touch another.
  ColumnPtr out = NewColumn(dict.value_type());
  const ColumnData& values = dict.values();
  out->Reserve(codes.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    int32_t code = codes.IsNull(i) ? ColumnDictionary::kNullCode
                                   : codes.i32[i];
    if (code < 0) {
      out->AppendNull();
    } else {
      out->AppendFrom(values, static_cast<size_t>(code));
    }
  }
  return out;
}

ColumnPtr UnifiedDictionary::Remap(const ColumnData& codes, bool left) const {
  FOCUS_CHECK(codes.type == TypeId::kInt32);
  const std::vector<int32_t>& map = left ? left_map : right_map;
  ColumnPtr out = NewColumn(TypeId::kInt32);
  out->i32.reserve(codes.size());
  for (int32_t code : codes.i32) {
    out->i32.push_back(code < 0 ? code : map[code]);
  }
  return out;
}

UnifiedDictionary UnifyDictionaries(const ColumnDictionary& left,
                                    const ColumnDictionary& right) {
  FOCUS_CHECK(left.value_type() == right.value_type());
  const ColumnData& lv = left.values();
  const ColumnData& rv = right.values();
  ColumnPtr merged = NewColumn(left.value_type());
  UnifiedDictionary out;
  out.left_map.resize(lv.size());
  out.right_map.resize(rv.size());
  size_t i = 0, j = 0;
  while (i < lv.size() || j < rv.size()) {
    int cmp;
    if (i >= lv.size()) {
      cmp = 1;
    } else if (j >= rv.size()) {
      cmp = -1;
    } else {
      cmp = CompareColumnRows(lv, i, rv, j);
    }
    int32_t code = static_cast<int32_t>(merged->size());
    if (cmp <= 0) {
      merged->AppendFrom(lv, i);
      out.left_map[i++] = code;
      if (cmp == 0) out.right_map[j++] = code;
    } else {
      merged->AppendFrom(rv, j);
      out.right_map[j++] = code;
    }
  }
  // The merge emitted sorted distinct values, so `merged` already is the
  // dictionary's value column.
  out.dict = ColumnDictionary::BuildFromSorted(*merged);
  return out;
}

EncodedColumnSet EncodedColumnSet::FromColumnSet(const ColumnSet& rows,
                                                 const EncodeOptions& opts) {
  EncodedColumnSet out;
  out.schema_ = rows.schema();
  const int ncols = rows.num_columns();
  out.dicts_.resize(ncols);
  out.stats_.resize(ncols);
  std::vector<Column> code_cols;
  std::vector<ColumnPtr> code_data;
  code_cols.reserve(ncols);
  code_data.reserve(ncols);
  for (int c = 0; c < ncols; ++c) {
    const ColumnData& col = rows.col(c);
    ColumnStats& st = out.stats_[c];
    st.rows = col.size();
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsNull(r)) ++st.nulls;
    }
    bool candidate =
        std::find(opts.skip_columns.begin(), opts.skip_columns.end(), c) ==
        opts.skip_columns.end();
    switch (col.type) {
      case TypeId::kInt32:
      case TypeId::kInt64:
        candidate = candidate && opts.encode_ints;
        break;
      case TypeId::kString:
        candidate = candidate && opts.encode_strings;
        break;
      case TypeId::kDouble:
        candidate = candidate && opts.encode_doubles;
        break;
    }
    if (candidate) {
      DictionaryPtr dict = ColumnDictionary::Build(col);
      st.distinct = static_cast<uint64_t>(dict->size());
      uint64_t valid = st.rows - st.nulls;
      if (valid == 0 ||
          static_cast<double>(st.distinct) <=
              opts.max_distinct_fraction * static_cast<double>(valid)) {
        st.encoded = true;
        out.dicts_[c] = std::move(dict);
        code_cols.push_back({rows.schema().column(c).name, TypeId::kInt32});
        code_data.push_back(EncodeColumn(col, *out.dicts_[c]));
        continue;
      }
    }
    code_cols.push_back(rows.schema().column(c));
    code_data.push_back(rows.col_ptr(c));  // shared zero-copy
  }
  out.code_view_ = ColumnSet(Schema(std::move(code_cols)),
                             std::move(code_data));
  return out;
}

ColumnPtr EncodedColumnSet::MaterializeFrom(const ColumnData& codes_or_values,
                                            int col) const {
  if (!encoded(col)) {
    // Fresh copy even for plain columns, so every materialized column is
    // an independent buffer (aliasing audit: no shared fills).
    ColumnPtr out = NewColumn(codes_or_values.type);
    out->AppendRange(codes_or_values, 0, codes_or_values.size());
    return out;
  }
  return DecodeColumn(codes_or_values, *dicts_[col]);
}

}  // namespace focus::sql
