#include "sql/exec/batch.h"

#include "util/logging.h"

namespace focus::sql {

ColumnData::ColumnData(TypeId t) : type(t) {
  if (type == TypeId::kString) str_offsets.push_back(0);
}

size_t ColumnData::size() const {
  switch (type) {
    case TypeId::kInt32:
      return i32.size();
    case TypeId::kInt64:
      return i64.size();
    case TypeId::kDouble:
      return f64.size();
    case TypeId::kString:
      return str_offsets.size() - 1;
  }
  return 0;
}

void ColumnData::Clear() {
  i32.clear();
  i64.clear();
  f64.clear();
  str_offsets.clear();
  arena.clear();
  nulls.clear();
  if (type == TypeId::kString) str_offsets.push_back(0);
}

void ColumnData::Reserve(size_t n) {
  switch (type) {
    case TypeId::kInt32:
      i32.reserve(n);
      break;
    case TypeId::kInt64:
      i64.reserve(n);
      break;
    case TypeId::kDouble:
      f64.reserve(n);
      break;
    case TypeId::kString:
      str_offsets.reserve(n + 1);
      break;
  }
}

Value ColumnData::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null(type);
  switch (type) {
    case TypeId::kInt32:
      return Value::Int32(i32[row]);
    case TypeId::kInt64:
      return Value::Int64(i64[row]);
    case TypeId::kDouble:
      return Value::Double(f64[row]);
    case TypeId::kString:
      return Value::Str(std::string(StringAt(row)));
  }
  return Value();
}

void ColumnData::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  FOCUS_DCHECK(v.type() == type);
  switch (type) {
    case TypeId::kInt32:
      i32.push_back(v.AsInt32());
      break;
    case TypeId::kInt64:
      i64.push_back(v.AsInt64());
      break;
    case TypeId::kDouble:
      f64.push_back(v.AsDouble());
      break;
    case TypeId::kString:
      arena.append(v.AsString());
      str_offsets.push_back(static_cast<uint32_t>(arena.size()));
      break;
  }
  if (!nulls.empty()) nulls.push_back(0);
}

void ColumnData::AppendNull() {
  if (nulls.empty()) nulls.assign(size(), 0);
  switch (type) {
    case TypeId::kInt32:
      i32.push_back(0);
      break;
    case TypeId::kInt64:
      i64.push_back(0);
      break;
    case TypeId::kDouble:
      f64.push_back(0);
      break;
    case TypeId::kString:
      str_offsets.push_back(static_cast<uint32_t>(arena.size()));
      break;
  }
  nulls.push_back(1);
}

void ColumnData::AppendFrom(const ColumnData& src, size_t row) {
  if (src.IsNull(row)) {
    AppendNull();
    return;
  }
  FOCUS_DCHECK(src.type == type);
  switch (type) {
    case TypeId::kInt32:
      i32.push_back(src.i32[row]);
      break;
    case TypeId::kInt64:
      i64.push_back(src.i64[row]);
      break;
    case TypeId::kDouble:
      f64.push_back(src.f64[row]);
      break;
    case TypeId::kString: {
      std::string_view s = src.StringAt(row);
      arena.append(s);
      str_offsets.push_back(static_cast<uint32_t>(arena.size()));
      break;
    }
  }
  if (!nulls.empty()) nulls.push_back(0);
}

void ColumnData::AppendRange(const ColumnData& src, size_t begin,
                             size_t end) {
  FOCUS_DCHECK(src.type == type);
  if (src.has_nulls()) {
    for (size_t r = begin; r < end; ++r) AppendFrom(src, r);
    return;
  }
  switch (type) {
    case TypeId::kInt32:
      i32.insert(i32.end(), src.i32.begin() + begin, src.i32.begin() + end);
      break;
    case TypeId::kInt64:
      i64.insert(i64.end(), src.i64.begin() + begin, src.i64.begin() + end);
      break;
    case TypeId::kDouble:
      f64.insert(f64.end(), src.f64.begin() + begin, src.f64.begin() + end);
      break;
    case TypeId::kString: {
      uint32_t base = static_cast<uint32_t>(arena.size());
      arena.append(src.arena, src.str_offsets[begin],
                   src.str_offsets[end] - src.str_offsets[begin]);
      for (size_t r = begin; r < end; ++r) {
        str_offsets.push_back(base + src.str_offsets[r + 1] -
                              src.str_offsets[begin]);
      }
      break;
    }
  }
  if (!nulls.empty()) nulls.insert(nulls.end(), end - begin, 0);
}

ColumnPtr Gather(const ColumnData& src, const int64_t* idx, size_t n) {
  ColumnPtr out = NewColumn(src.type);
  out->Reserve(n);
  bool any_null = src.has_nulls();
  if (!any_null) {
    for (size_t k = 0; k < n; ++k) {
      if (idx[k] < 0) {
        any_null = true;
        break;
      }
    }
  }
  if (!any_null) {
    // Fast paths: tight loops over flat arrays, no null bookkeeping.
    switch (src.type) {
      case TypeId::kInt32:
        for (size_t k = 0; k < n; ++k) out->i32.push_back(src.i32[idx[k]]);
        break;
      case TypeId::kInt64:
        for (size_t k = 0; k < n; ++k) out->i64.push_back(src.i64[idx[k]]);
        break;
      case TypeId::kDouble:
        for (size_t k = 0; k < n; ++k) out->f64.push_back(src.f64[idx[k]]);
        break;
      case TypeId::kString:
        for (size_t k = 0; k < n; ++k) {
          out->arena.append(src.StringAt(idx[k]));
          out->str_offsets.push_back(
              static_cast<uint32_t>(out->arena.size()));
        }
        break;
    }
    return out;
  }
  for (size_t k = 0; k < n; ++k) {
    if (idx[k] < 0) {
      out->AppendNull();
    } else {
      out->AppendFrom(src, static_cast<size_t>(idx[k]));
    }
  }
  return out;
}

int CompareColumnRows(const ColumnData& a, size_t ra, const ColumnData& b,
                      size_t rb) {
  bool an = a.IsNull(ra), bn = b.IsNull(rb);
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  FOCUS_DCHECK(a.type == b.type);
  switch (a.type) {
    case TypeId::kInt32: {
      int32_t l = a.i32[ra], r = b.i32[rb];
      return l < r ? -1 : (l > r ? 1 : 0);
    }
    case TypeId::kInt64: {
      int64_t l = a.i64[ra], r = b.i64[rb];
      return l < r ? -1 : (l > r ? 1 : 0);
    }
    case TypeId::kDouble: {
      double l = a.f64[ra], r = b.f64[rb];
      return l < r ? -1 : (l > r ? 1 : 0);
    }
    case TypeId::kString:
      return a.StringAt(ra).compare(b.StringAt(rb));
  }
  return 0;
}

int CompareRowsOnKeys(const std::vector<ColumnPtr>& cols, size_t a, size_t b,
                      const std::vector<SortKey>& keys) {
  for (const SortKey& key : keys) {
    int c = CompareColumnRows(*cols[key.col], a, *cols[key.col], b);
    if (c != 0) return key.descending ? -c : c;
  }
  return 0;
}

void Batch::ToTuple(size_t row, Tuple* out) const {
  std::vector<Value> values;
  values.reserve(cols_.size());
  for (const ColumnPtr& col : cols_) values.push_back(col->ValueAt(row));
  *out = Tuple(std::move(values));
}

void Batch::AppendTuple(const Schema& schema, const Tuple& t) {
  if (cols_.empty()) {
    cols_.reserve(schema.num_columns());
    for (const Column& c : schema.columns()) {
      cols_.push_back(NewColumn(c.type));
    }
  }
  for (int i = 0; i < static_cast<int>(cols_.size()); ++i) {
    cols_[i]->AppendValue(t.Get(i));
  }
}

ColumnSet::ColumnSet(const Schema& schema) : schema_(schema) {
  cols_.reserve(schema_.num_columns());
  for (const Column& c : schema_.columns()) cols_.push_back(NewColumn(c.type));
}

ColumnSet::ColumnSet(Schema schema, std::vector<ColumnPtr> cols)
    : schema_(std::move(schema)), cols_(std::move(cols)) {
  FOCUS_DCHECK(static_cast<int>(cols_.size()) == schema_.num_columns());
  for (const ColumnPtr& c : cols_) {
    FOCUS_DCHECK(c != nullptr);
    FOCUS_DCHECK(c->size() == cols_[0]->size());
  }
}

void ColumnSet::AppendBatch(const Batch& b) {
  FOCUS_DCHECK(b.num_columns() == num_columns());
  size_t n = b.num_rows();
  for (int i = 0; i < num_columns(); ++i) {
    cols_[i]->AppendRange(b.col(i), 0, n);
  }
}

void ColumnSet::AppendTuple(const Tuple& t) {
  for (int i = 0; i < num_columns(); ++i) cols_[i]->AppendValue(t.Get(i));
}

void ColumnSet::Clear() {
  for (ColumnPtr& col : cols_) col->Clear();
}

}  // namespace focus::sql
