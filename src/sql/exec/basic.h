// Filter, Project and Limit operators.
#ifndef FOCUS_SQL_EXEC_BASIC_H_
#define FOCUS_SQL_EXEC_BASIC_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sql/exec/operator.h"

namespace focus::sql {

// Emits child tuples satisfying `predicate`.
class Filter final : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  Filter(OperatorPtr child, Predicate predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  Predicate predicate_;
};

// One output column: a name/type plus a function of the input tuple.
struct ProjExpr {
  std::string name;
  TypeId type;
  std::function<Value(const Tuple&)> fn;
};

// Computes an output tuple per input tuple.
class Project final : public Operator {
 public:
  Project(OperatorPtr child, std::vector<ProjExpr> exprs);

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return schema_; }

  // Convenience: projection that keeps the given child columns.
  static OperatorPtr Columns(OperatorPtr child, std::vector<int> cols);

 private:
  OperatorPtr child_;
  std::vector<ProjExpr> exprs_;
  Schema schema_;
};

// Emits at most `limit` tuples.
class Limit final : public Operator {
 public:
  Limit(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_BASIC_H_
