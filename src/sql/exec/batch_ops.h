// Vectorized (batch-at-a-time) executor operators.
//
// The scalar Volcano engine (operator.h) pays one virtual call and one
// Tuple assembly per row; these operators move a Batch (batch.h) of ~1024
// rows per call and work directly on flat column vectors. The set covers
// exactly what the Figure 3 (BulkProbe) and Figure 4 (join distillation)
// plans use: table scan, selection-vector filter, projection/expression,
// sort, merge join (inner and left outer), cross join against a small
// build side, and grouped sum/count over sorted runs. Vectorize/
// Devectorize adapters let scalar and batch operators compose during
// migration, so plans can move over one operator at a time.
//
// Every operator reports to the obs registry: focus_sql_batches_total,
// a focus_sql_rows_per_batch histogram, and per-operator self-time
// counters (focus_sql_batch_op_micros_total{op=...}) — crawl_monitoring
// renders these to show where classify time goes.
#ifndef FOCUS_SQL_EXEC_BATCH_OPS_H_
#define FOCUS_SQL_EXEC_BATCH_OPS_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sql/exec/aggregate.h"
#include "sql/exec/batch.h"
#include "sql/exec/operator.h"
#include "sql/exec/sort.h"
#include "sql/table.h"

namespace focus::sql {

// Redirects batch-engine metrics (nullptr = back to the process-wide
// registry). Takes effect for operators that have not yet executed.
void SetBatchMetricsRegistry(obs::MetricsRegistry* registry);

// The registry batch-engine metrics currently resolve to (the redirected
// one, else the process-wide registry). The parallel engine (parallel.h)
// reports its morsel/partition counters here too.
obs::MetricsRegistry* BatchMetricsRegistry();

// Per-operator counters a parallel operator exposes so EXPLAIN ANALYZE can
// render morsel/partition fan-out and skew (analyze.cc copies these into
// the plan node after each NextBatch).
struct ParallelOpStats {
  uint64_t morsels = 0;             // morsel tasks dispatched
  uint64_t partitions = 0;          // radix partitions formed (0 = serial)
  uint64_t max_partition_rows = 0;  // largest partition (skew signal)
};

// Base interface: Open / NextBatch / Close, mirroring the scalar
// Operator. NextBatch resets `out` and fills it; returns false when
// exhausted (out left empty). The non-virtual NextBatch wraps the
// subclass hook with metrics (batch count, rows/batch, self time).
class BatchOperator {
 public:
  virtual ~BatchOperator() = default;

  virtual Status Open() = 0;
  Result<bool> NextBatch(Batch* out);
  virtual void Close() {}
  virtual const Schema& schema() const = 0;

  // Non-null for parallel operators (parallel.h): morsel/partition counts
  // of the work done so far, for EXPLAIN ANALYZE.
  virtual const ParallelOpStats* parallel_stats() const { return nullptr; }

 protected:
  // `op_name` keys the per-operator obs metrics; nullptr (used by the
  // EXPLAIN ANALYZE wrapper) records nothing.
  explicit BatchOperator(const char* op_name) : op_name_(op_name) {}
  virtual Result<bool> DoNextBatch(Batch* out) = 0;

 private:
  const char* op_name_;
  obs::Counter* batches_total_ = nullptr;
  obs::Histogram* rows_per_batch_ = nullptr;
  obs::Counter* self_micros_ = nullptr;
};

using BatchOperatorPtr = std::unique_ptr<BatchOperator>;

// Heap scan in batches. `cols` prunes the output to those columns (empty
// = all) — plans over CRAWL read two of its columns and never copy URL
// payloads into the batch arena.
class BatchTableScan final : public BatchOperator {
 public:
  explicit BatchTableScan(const Table* table, std::vector<int> cols = {},
                          int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override { it_.reset(); }
  const Schema& schema() const override { return schema_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  const Table* table_;
  std::vector<int> cols_;
  int batch_rows_;
  Schema schema_;
  std::optional<Table::Iterator> it_;
  Tuple row_;
};

// Borrowing source over a materialized ColumnSet (the batch analogue of
// BorrowedSource). A set that fits one batch is forwarded zero-copy.
class BatchSource final : public BatchOperator {
 public:
  explicit BatchSource(const ColumnSet* set,
                       int batch_rows = kDefaultBatchRows)
      : BatchOperator("source"), set_(set), batch_rows_(batch_rows) {}

  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  const Schema& schema() const override { return set_->schema(); }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  const ColumnSet* set_;
  int batch_rows_;
  size_t pos_ = 0;
};

// Adapter: pulls a scalar child and packs tuples into batches.
class Vectorize final : public BatchOperator {
 public:
  explicit Vectorize(OperatorPtr child, int batch_rows = kDefaultBatchRows)
      : BatchOperator("vectorize"),
        child_(std::move(child)),
        batch_rows_(batch_rows) {}

  Status Open() override { return child_->Open(); }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  OperatorPtr child_;
  int batch_rows_;
  Tuple row_;
};

// Adapter: exposes a batch plan as a scalar Operator.
class Devectorize final : public Operator {
 public:
  explicit Devectorize(BatchOperatorPtr child) : child_(std::move(child)) {}

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  BatchOperatorPtr child_;
  Batch batch_;
  size_t pos_ = 0;
  bool done_ = false;
};

// Appends the indices of qualifying rows to `sel` (ascending).
using BatchPredicate =
    std::function<void(const Batch& in, std::vector<int64_t>* sel)>;

// Selection-vector filter: the predicate marks qualifying rows, then one
// gather per column compacts them. A batch where every row qualifies is
// forwarded zero-copy.
class BatchFilter final : public BatchOperator {
 public:
  BatchFilter(BatchOperatorPtr child, BatchPredicate pred)
      : BatchOperator("filter"),
        child_(std::move(child)),
        pred_(std::move(pred)) {}

  Status Open() override { return child_->Open(); }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr child_;
  BatchPredicate pred_;
  Batch in_;
  std::vector<int64_t> sel_;
};

// One output column: name/type plus a column-at-a-time evaluator.
struct BatchExpr {
  std::string name;
  TypeId type;
  std::function<ColumnPtr(const Batch& in)> eval;

  // Pass-through of input column `col` (forwards the ColumnPtr).
  static BatchExpr Passthrough(std::string name, TypeId type, int col);
};

class BatchProject final : public BatchOperator {
 public:
  BatchProject(BatchOperatorPtr child, std::vector<BatchExpr> exprs);

  Status Open() override { return child_->Open(); }
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return schema_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr child_;
  std::vector<BatchExpr> exprs_;
  Schema schema_;
  Batch in_;
};

// Materializing sort: drains the child into a ColumnSet, stable-sorts an
// index permutation on `keys`, emits gathered batches. Stability keeps
// the scalar engine's within-group arrival order, so downstream
// floating-point accumulation matches the scalar plan bit-for-bit.
class BatchSort final : public BatchOperator {
 public:
  BatchSort(BatchOperatorPtr child, std::vector<SortKey> keys,
            int batch_rows = kDefaultBatchRows)
      : BatchOperator("sort"),
        child_(std::move(child)),
        keys_(std::move(keys)),
        batch_rows_(batch_rows) {}

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return child_->schema(); }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr child_;
  std::vector<SortKey> keys_;
  int batch_rows_;
  ColumnSet rows_;
  std::vector<int64_t> order_;
  std::vector<uint64_t> packed_;  // injective sort keys; empty if unused
  size_t pos_ = 0;
  bool loaded_ = false;
};

// Merge join over inputs sorted ascending on their key columns. Both
// sides are materialized, the merge produces (left, right) index pairs
// (right -1 = NULL padding under left_outer), and output batches are
// gathered from the pair arrays.
class BatchMergeJoin final : public BatchOperator {
 public:
  BatchMergeJoin(BatchOperatorPtr left, BatchOperatorPtr right,
                 std::vector<int> left_keys, std::vector<int> right_keys,
                 bool left_outer = false,
                 int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  Status Merge();

  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  bool left_outer_;
  int batch_rows_;
  Schema schema_;

  ColumnSet lrows_, rrows_;
  std::vector<int64_t> li_, ri_;
  size_t pos_ = 0;
  bool merged_ = false;
};

// Index-probe join: the access path the cost model (cost_model.h) pits
// against BatchMergeJoin. Both inputs must arrive sorted ascending on
// their single join key (exactly the merge join's precondition); instead
// of scanning the inner side row by row, each distinct outer key run
// binary-searches the inner for its matching run — or, when the inner key
// is a dense dictionary-code domain (kInt32, NULL-free, values in
// [0, dense_domain)), looks it up in an O(1) run table built in one pass.
// Emission is left-major within key groups, identical pair-for-pair to
// BatchMergeJoin, so swapping the two operators never changes results —
// only which side's size dominates the cost (Fig. 8).
class BatchProbeJoin final : public BatchOperator {
 public:
  // `dense_domain` > 0 enables the run-table fast path (the inner key
  // column must then hold codes in [0, dense_domain)).
  BatchProbeJoin(BatchOperatorPtr left, BatchOperatorPtr right, int left_key,
                 int right_key, bool left_outer = false,
                 int64_t dense_domain = 0,
                 int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  Status Probe();

  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  int left_key_;
  int right_key_;
  bool left_outer_;
  int64_t dense_domain_;
  int batch_rows_;
  Schema schema_;

  ColumnSet lrows_, rrows_;
  std::vector<int64_t> li_, ri_;
  size_t pos_ = 0;
  bool probed_ = false;
};

// Cross join against a small materialized right side (the DOCLEN x
// children step of Figure 3).
class BatchCrossJoin final : public BatchOperator {
 public:
  BatchCrossJoin(BatchOperatorPtr left, BatchOperatorPtr right,
                 int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  int batch_rows_;
  Schema schema_;

  ColumnSet lrows_, rrows_;
  size_t pos_ = 0;  // over the n_left * n_right logical pairs
  bool loaded_ = false;
};

// Grouped aggregation over an input already sorted by `group_cols`:
// sum/count accumulate over each sorted run and emit one row per group,
// streaming (no hash table, no materialized output). Output columns are
// the group columns followed by one column per spec; types and the
// accumulate-in-double behavior match HashAggregate exactly, and output
// order (input sorted order) matches HashAggregate's ascending std::map
// emission when the sort keys are the group columns.
class BatchSortedAggregate final : public BatchOperator {
 public:
  BatchSortedAggregate(BatchOperatorPtr child, std::vector<int> group_cols,
                       std::vector<AggSpec> aggs,
                       int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override { child_->Close(); }
  const Schema& schema() const override { return schema_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  void EmitGroup(Batch* out);

  BatchOperatorPtr child_;
  std::vector<int> group_cols_;
  std::vector<AggSpec> aggs_;
  int batch_rows_;
  Schema schema_;

  Batch in_;
  size_t in_pos_ = 0;
  bool in_valid_ = false;
  bool input_done_ = false;

  bool group_open_ = false;
  std::vector<Value> group_key_;
  std::vector<double> sums_;
  std::vector<int64_t> counts_;
};

// Fused sort + sorted-run aggregation: materializes the child, sorts a
// row permutation, and aggregates runs by walking the permutation, so the
// sorted intermediate is never gathered into batches. Produces exactly
// the output of BatchSortedAggregate(BatchSort(child, sort_keys), ...),
// including the floating-point accumulation order.
class BatchSortAggregate final : public BatchOperator {
 public:
  BatchSortAggregate(BatchOperatorPtr child, std::vector<SortKey> sort_keys,
                     std::vector<int> group_cols, std::vector<AggSpec> aggs,
                     int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr child_;
  std::vector<SortKey> sort_keys_;
  std::vector<int> group_cols_;
  std::vector<AggSpec> aggs_;
  int batch_rows_;
  Schema schema_;

  ColumnSet rows_;  // staged input; released once aggregated
  ColumnSet agg_;   // the aggregated result, emitted in batch_rows chunks
  size_t pos_ = 0;
  bool loaded_ = false;
};

// Drains `op` into `out` (Open/NextBatch/Close included).
Status CollectInto(BatchOperator* op, ColumnSet* out);

// ---- shared executor kernels -------------------------------------------
//
// The serial batch operators above and the morsel-driven parallel
// operators (parallel.h) must produce bit-identical results, so the row
// kernels they share live here rather than being duplicated.

// Stable sort permutation of `rows` on `keys`. Uses the packed-int fast
// path when the keys are 1-2 NULL-free int columns whose compressed ranges
// fit one 64-bit word — `packed` is then filled with the row-indexed
// injective sort words (equal words <=> equal key values) — and falls back
// to a generic stable comparison sort (`packed` left empty).
void SortPermutation(const ColumnSet& rows, const std::vector<SortKey>& keys,
                     std::vector<int64_t>* order,
                     std::vector<uint64_t>* packed);

// Emits the (left, right) row-index pairs of the sorted merge join
// lrows[lidx[0..nl)] ⋈ rrows[ridx[0..nr)]; a null lidx/ridx means the
// identity over all rows. Inputs must arrive sorted ascending on their key
// columns (through the index arrays). Output is left-major within each key
// group — the scalar MergeJoin's order; right index -1 = NULL padding
// under left_outer. Appends to li/ri.
void MergeJoinIndices(const ColumnSet& lrows, const ColumnSet& rrows,
                      const std::vector<int>& left_keys,
                      const std::vector<int>& right_keys, bool left_outer,
                      const int64_t* lidx, size_t nl, const int64_t* ridx,
                      size_t nr, std::vector<int64_t>* li,
                      std::vector<int64_t>* ri);

// Run bounds per dictionary code over a sorted inner side: code c's
// matching rows are rk[lo[c] .. hi[c]). Built in one sequential pass;
// turns every probe into two array reads.
struct DenseRunTable {
  std::vector<int64_t> lo, hi;
};
DenseRunTable BuildDenseRunTable(const ColumnData& rk, int64_t domain);

// Emits the (left, right) row-index pairs of lrows[lbegin..lend) ⋈ rrows
// on one key column each, both sorted ascending, by binary-searching (or,
// given a dense run table, looking up) the right run for each left key
// run. Produces exactly the pairs MergeJoinIndices produces for the same
// inputs, in the same order; any [lbegin, lend) split of the left
// concatenates to the full result, which is what lets the parallel
// engine probe morsels independently. Appends to li/ri.
void ProbeJoinIndices(const ColumnSet& lrows, const ColumnSet& rrows,
                      int left_key, int right_key, bool left_outer,
                      const DenseRunTable* dense, size_t lbegin, size_t lend,
                      std::vector<int64_t>* li, std::vector<int64_t>* ri);

// Equality/range predicate on a dictionary-code column: keeps rows whose
// code lies in [lo_code, hi_code). The caller turns a value predicate
// into code bounds with one dictionary probe (ColumnDictionary::
// LowerBound/UpperBound), so the per-row work is two int compares — no
// value comparisons, no string walks. NULL (negative) codes never pass.
BatchPredicate CodeRangePredicate(int col, int32_t lo_code, int32_t hi_code);

// Membership (semi-join) predicate: keeps rows whose column value is in
// the sorted value column `domain` (no NULLs), one binary search per row
// — the dictionary-probe replacement for joining against a distinct-key
// side that contributes no payload. `domain` is shared, not copied.
BatchPredicate DomainMembershipPredicate(int col, ColumnPtr domain);

// Output schema of a sorted-run aggregate: the group columns followed by
// one column per spec (types exactly as HashAggregate).
Schema SortedAggSchema(const Schema& in, const std::vector<int>& group_cols,
                       const std::vector<AggSpec>& aggs);

// True when `packed` sort words decide group boundaries: the group columns
// are exactly the sort-key columns (packing is injective), the condition
// both run-aggregation operators share.
bool GroupsMatchSortKeys(const std::vector<int>& group_cols,
                         const std::vector<SortKey>& sort_keys);

// Aggregates the sorted runs of `rows` visited through order[begin..end)
// and appends one row per group to `out` (schema = SortedAggSchema).
// Group boundaries compare packed words (row-indexed; pass nullptr to
// compare the group columns directly). Sums accumulate in double in
// visit order — the exact arithmetic of BatchSortedAggregate.
void AggregateSortedRuns(const ColumnSet& rows,
                         const std::vector<int64_t>& order, size_t begin,
                         size_t end, const uint64_t* packed,
                         const std::vector<int>& group_cols,
                         const std::vector<AggSpec>& aggs, ColumnSet* out);

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_BATCH_OPS_H_
