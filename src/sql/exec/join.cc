#include "sql/exec/join.h"

#include "util/hash.h"

namespace focus::sql {

namespace internal_join {

int CompareKeys(const Tuple& a, const std::vector<int>& a_cols,
                const Tuple& b, const std::vector<int>& b_cols) {
  for (size_t i = 0; i < a_cols.size(); ++i) {
    int c = a.Get(a_cols[i]).Compare(b.Get(b_cols[i]));
    if (c != 0) return c;
  }
  return 0;
}

Tuple ConcatTuples(const Tuple& left, const Tuple& right) {
  std::vector<Value> values;
  values.reserve(left.size() + right.size());
  for (const auto& v : left.values()) values.push_back(v);
  for (const auto& v : right.values()) values.push_back(v);
  return Tuple(std::move(values));
}

Tuple ConcatWithNulls(const Tuple& left, const Schema& right_schema) {
  std::vector<Value> values;
  values.reserve(left.size() + right_schema.num_columns());
  for (const auto& v : left.values()) values.push_back(v);
  for (int i = 0; i < right_schema.num_columns(); ++i) {
    values.push_back(Value::Null(right_schema.column(i).type));
  }
  return Tuple(std::move(values));
}

}  // namespace internal_join

using internal_join::CompareKeys;
using internal_join::ConcatTuples;
using internal_join::ConcatWithNulls;

MergeJoin::MergeJoin(OperatorPtr left, OperatorPtr right,
                     std::vector<int> left_keys, std::vector<int> right_keys,
                     bool left_outer)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      left_outer_(left_outer),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Result<bool> MergeJoin::PullLeft() {
  FOCUS_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_row_));
  left_matched_ = false;
  return left_valid_;
}

Result<bool> MergeJoin::PullRight() {
  FOCUS_ASSIGN_OR_RETURN(right_valid_, right_->Next(&right_row_));
  return right_valid_;
}

Status MergeJoin::Open() {
  FOCUS_RETURN_IF_ERROR(left_->Open());
  FOCUS_RETURN_IF_ERROR(right_->Open());
  group_.clear();
  have_group_ = false;
  group_pos_ = 0;
  FOCUS_RETURN_IF_ERROR(PullLeft().status());
  FOCUS_RETURN_IF_ERROR(PullRight().status());
  return Status::OK();
}

Result<bool> MergeJoin::Next(Tuple* out) {
  for (;;) {
    if (!left_valid_) return false;

    if (have_group_ &&
        CompareKeys(left_row_, left_keys_, group_key_row_, right_keys_) ==
            0) {
      if (group_pos_ < group_.size()) {
        out->AssignConcat(left_row_, group_[group_pos_++]);
        left_matched_ = true;
        return true;
      }
      // Exhausted the group for this left row: advance left, re-test.
      FOCUS_RETURN_IF_ERROR(PullLeft().status());
      group_pos_ = 0;
      continue;
    }

    if (!right_valid_) {
      // No further right rows can match any left row.
      if (left_outer_ && !left_matched_) {
        out->AssignConcatNulls(left_row_, right_->schema());
        FOCUS_RETURN_IF_ERROR(PullLeft().status());
        group_pos_ = 0;
        return true;
      }
      FOCUS_RETURN_IF_ERROR(PullLeft().status());
      group_pos_ = 0;
      continue;
    }

    int cmp = CompareKeys(left_row_, left_keys_, right_row_, right_keys_);
    if (cmp < 0) {
      if (left_outer_ && !left_matched_) {
        out->AssignConcatNulls(left_row_, right_->schema());
        FOCUS_RETURN_IF_ERROR(PullLeft().status());
        group_pos_ = 0;
        return true;
      }
      FOCUS_RETURN_IF_ERROR(PullLeft().status());
      group_pos_ = 0;
      continue;
    }
    if (cmp > 0) {
      FOCUS_RETURN_IF_ERROR(PullRight().status());
      continue;
    }
    // Equal: buffer the full right group sharing this key.
    group_.clear();
    group_key_row_ = right_row_;
    do {
      group_.push_back(std::move(right_row_));
      FOCUS_ASSIGN_OR_RETURN(bool more, PullRight());
      if (!more) break;
    } while (CompareKeys(right_row_, right_keys_, group_key_row_,
                         right_keys_) == 0);
    have_group_ = true;
    group_pos_ = 0;
  }
}

void MergeJoin::Close() {
  left_->Close();
  right_->Close();
  group_.clear();
}

HashJoin::HashJoin(OperatorPtr left, OperatorPtr right,
                   std::vector<int> left_keys, std::vector<int> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

uint64_t HashJoin::KeyHash(const Tuple& t, const std::vector<int>& cols)
    const {
  uint64_t h = 0x12345;
  for (int c : cols) h = HashCombine(h, t.Get(c).Hash());
  return h;
}

bool HashJoin::KeysEqual(const Tuple& l, const Tuple& r) const {
  return CompareKeys(l, left_keys_, r, right_keys_) == 0;
}

Status HashJoin::Open() {
  FOCUS_RETURN_IF_ERROR(left_->Open());
  FOCUS_RETURN_IF_ERROR(right_->Open());
  build_.clear();
  matches_.clear();
  match_pos_ = 0;
  Tuple t;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, left_->Next(&t));
    if (!more) break;
    uint64_t h = KeyHash(t, left_keys_);
    build_.emplace(h, std::move(t));
  }
  return Status::OK();
}

Result<bool> HashJoin::Next(Tuple* out) {
  for (;;) {
    if (match_pos_ < matches_.size()) {
      out->AssignConcat(*matches_[match_pos_++], probe_row_);
      return true;
    }
    FOCUS_ASSIGN_OR_RETURN(bool more, right_->Next(&probe_row_));
    if (!more) return false;
    matches_.clear();
    match_pos_ = 0;
    auto [lo, hi] = build_.equal_range(KeyHash(probe_row_, right_keys_));
    for (auto it = lo; it != hi; ++it) {
      if (KeysEqual(it->second, probe_row_)) matches_.push_back(&it->second);
    }
  }
}

void HashJoin::Close() {
  left_->Close();
  right_->Close();
  build_.clear();
}

NestedLoopJoin::NestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               Predicate pred)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status NestedLoopJoin::Open() {
  FOCUS_RETURN_IF_ERROR(left_->Open());
  // Collect() opens and closes the right child itself.
  FOCUS_ASSIGN_OR_RETURN(right_rows_, Collect(right_.get()));
  FOCUS_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_row_));
  right_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopJoin::Next(Tuple* out) {
  while (left_valid_) {
    while (right_pos_ < right_rows_.size()) {
      const Tuple& r = right_rows_[right_pos_++];
      if (pred_(left_row_, r)) {
        out->AssignConcat(left_row_, r);
        return true;
      }
    }
    FOCUS_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_row_));
    right_pos_ = 0;
  }
  return false;
}

void NestedLoopJoin::Close() {
  left_->Close();
  right_rows_.clear();
}

}  // namespace focus::sql
