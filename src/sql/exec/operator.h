// Pull-based (Volcano-style) executor operators.
//
// Plans are composed by hand in C++ — the engine has no SQL parser; the
// paper's SQL (Figures 3 and 4, §3.7 monitoring queries) is transcribed
// into operator trees. Each operator exposes Open / Next / Close and its
// output schema.
#ifndef FOCUS_SQL_EXEC_OPERATOR_H_
#define FOCUS_SQL_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "sql/schema.h"
#include "util/status.h"

namespace focus::sql {

// Which executor runs a hot relational plan: the scalar Volcano engine
// (one Tuple per Next call), the vectorized batch engine (batch_ops.h),
// the morsel-driven parallel batch engine (parallel.h), which runs the
// vectorized operators' work partitioned across a thread pool, or the
// dictionary-encoded engine (dictionary.h), which runs the vectorized
// operators over dictionary codes with cost-based access-path selection
// (cost_model.h) and late materialization. All four produce identical
// results (tested, bit-exact); vectorized is the default for the
// Figure 3 / Figure 4 consumers.
enum class ExecEngine { kScalar, kVectorized, kParallel, kEncoded };

class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open() = 0;
  // Produces the next tuple into `out`; returns false when exhausted.
  virtual Result<bool> Next(Tuple* out) = 0;
  virtual void Close() {}
  virtual const Schema& schema() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

// Runs `op` to completion and returns its rows (Open/Next/Close included),
// moving each tuple out of the operator's output slot. `reserve_hint`
// pre-sizes the result when the caller knows the cardinality.
Result<std::vector<Tuple>> Collect(Operator* op, size_t reserve_hint = 0);

// A materialized rowset as an operator source; used to stage multi-pass
// plans (the "with ... as" blocks of Figure 3).
class MaterializedSource final : public Operator {
 public:
  MaterializedSource(Schema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

// Like MaterializedSource but borrows the rows (no copy). The rows and
// schema must outlive the operator. Used when one materialized pass feeds
// several plans (e.g. the sorted-DOCUMENT temp reused across BulkProbe
// nodes).
class BorrowedSource final : public Operator {
 public:
  BorrowedSource(Schema schema, const std::vector<Tuple>* rows)
      : schema_(std::move(schema)), rows_(rows) {}

  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override {
    if (pos_ >= rows_->size()) return false;
    *out = (*rows_)[pos_++];
    return true;
  }
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  const std::vector<Tuple>* rows_;
  size_t pos_ = 0;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_OPERATOR_H_
