#include "sql/exec/sort.h"

#include <algorithm>

namespace focus::sql {

int CompareOnKeys(const Tuple& a, const Tuple& b,
                  const std::vector<SortKey>& keys) {
  for (const auto& k : keys) {
    int c = a.Get(k.col).Compare(b.Get(k.col));
    if (c != 0) return k.descending ? -c : c;
  }
  return 0;
}

Status Sort::Open() {
  FOCUS_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  pos_ = 0;
  Tuple t;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, child_->Next(&t));
    if (!more) break;
    rows_.push_back(std::move(t));
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     return CompareOnKeys(a, b, keys_) < 0;
                   });
  return Status::OK();
}

Result<bool> Sort::Next(Tuple* out) {
  if (pos_ >= rows_.size()) return false;
  // Safe to move out: Open() rebuilds rows_ before any re-execution.
  *out = std::move(rows_[pos_++]);
  return true;
}

}  // namespace focus::sql
