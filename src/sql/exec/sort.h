// Sort operator (materializing).
//
// The sort itself runs in memory; the I/O character of a sort-merge plan
// comes from reading the inputs sequentially exactly once, which this
// preserves. (DB2 would spill large sorts; our experiment tables fit the
// sort budget, as the paper's did.)
#ifndef FOCUS_SQL_EXEC_SORT_H_
#define FOCUS_SQL_EXEC_SORT_H_

#include <utility>
#include <vector>

#include "sql/exec/operator.h"

namespace focus::sql {

struct SortKey {
  int col;
  bool descending = false;
};

class Sort final : public Operator {
 public:
  Sort(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  void Close() override {
    rows_.clear();
    child_->Close();
  }
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

// Compares tuples on `keys`; exposed for reuse by merge join tests.
int CompareOnKeys(const Tuple& a, const Tuple& b,
                  const std::vector<SortKey>& keys);

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_SORT_H_
