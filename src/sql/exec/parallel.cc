#include "sql/exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <mutex>
#include <unordered_map>

#include "util/logging.h"

namespace focus::sql {

namespace {

int64_t IntAt(const ColumnData& col, size_t row) {
  return col.type == TypeId::kInt32 ? static_cast<int64_t>(col.i32[row])
                                    : col.i64[row];
}

// Drains `child` (already Opened) into cheap shared-column Batch handles.
Status DrainBatches(BatchOperator* child, std::vector<Batch>* out) {
  Batch b;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, child->NextBatch(&b));
    if (!more) return Status::OK();
    out->push_back(b);
  }
}

// Drains `child` (already Opened) into a materialized ColumnSet.
Status DrainInto(BatchOperator* child, ColumnSet* out) {
  *out = ColumnSet(child->schema());
  Batch b;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, child->NextBatch(&b));
    if (!more) return Status::OK();
    out->AppendBatch(b);
  }
}

void AppendSet(const ColumnSet& src, ColumnSet* dst) {
  for (int i = 0; i < src.num_columns(); ++i) {
    dst->mutable_col(i)->AppendRange(src.col(i), 0, src.num_rows());
  }
}

// Copies rows [pos, pos + batch_rows) of `set` into `out`; advances *pos.
bool EmitChunk(const ColumnSet& set, size_t* pos, int batch_rows,
               Batch* out) {
  size_t n = set.num_rows();
  if (*pos >= n) return false;
  size_t end = std::min(n, *pos + static_cast<size_t>(batch_rows));
  for (int i = 0; i < set.num_columns(); ++i) {
    ColumnPtr col = NewColumn(set.col(i).type);
    col->Reserve(end - *pos);
    col->AppendRange(set.col(i), *pos, end);
    out->AddColumn(std::move(col));
  }
  *pos = end;
  return true;
}

// Stable-sorts partition p's index slice by packed word; stability keeps
// the scatter's arrival order for equal keys, so the concatenation over
// partitions is the global stable sort permutation. Every word in the
// slice shares the partition's high bits, so an LSD radix pass over the
// low key_bits is the full order — the same kernel the serial sort uses,
// with the comparator sort kept for slices too small to pay for the
// counting passes (and for wide residual keys, mirroring the serial
// fallback).
void SortPartition(RadixPartitions* parts, size_t p) {
  const std::vector<uint64_t>& packed = parts->packed;
  int64_t* idx = parts->idx.data() + parts->offsets[p];
  size_t n = parts->offsets[p + 1] - parts->offsets[p];
  if (n < 2) return;
  if (n < 256 || parts->key_bits > 32) {
    std::stable_sort(idx, idx + n, [&packed](int64_t a, int64_t b) {
      return packed[a] < packed[b];
    });
    return;
  }
  std::vector<int64_t> tmp(n);
  int64_t* src = idx;
  int64_t* dst = tmp.data();
  for (int shift = 0; shift < parts->key_bits; shift += 8) {
    size_t count[257] = {0};
    for (size_t i = 0; i < n; ++i) {
      ++count[((packed[src[i]] >> shift) & 0xFF) + 1];
    }
    for (int d = 0; d < 256; ++d) count[d + 1] += count[d];
    for (size_t i = 0; i < n; ++i) {
      dst[count[(packed[src[i]] >> shift) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != idx) std::copy(src, src + n, idx);
}

Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

// --------------------------------------------------- morsel dispatcher --

MorselDispatcher::MorselDispatcher(int num_threads, int morsel_rows)
    : num_threads_(std::max(1, num_threads)),
      morsel_rows_(std::max(1, morsel_rows)) {
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_ - 1);
  }
}

uint64_t MorselDispatcher::ParallelFor(
    size_t n, size_t chunk, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return 0;
  if (chunk == 0) chunk = 1;
  size_t chunks = (n + chunk - 1) / chunk;
  if (morsels_total_ == nullptr) {
    obs::MetricsRegistry* reg = BatchMetricsRegistry();
    morsels_total_ = reg->GetCounter("focus_sql_parallel_morsels_total");
    tasks_total_ = reg->GetCounter("focus_sql_parallel_tasks_total");
  }
  morsels_total_->Add(chunks);
  if (pool_ == nullptr || chunks <= 1 ||
      ThreadPool::CurrentPool() == pool_.get()) {
    tasks_total_->Inc();
    for (size_t c = 0; c < chunks; ++c) {
      size_t begin = c * chunk;
      fn(begin, std::min(n, begin + chunk));
    }
    return chunks;
  }

  struct State {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    int outstanding = 0;
  };
  auto state = std::make_shared<State>();
  auto worker = [state, &fn, n, chunk, chunks] {
    size_t c;
    while ((c = state->next.fetch_add(1, std::memory_order_relaxed)) <
           chunks) {
      size_t begin = c * chunk;
      fn(begin, std::min(n, begin + chunk));
    }
  };
  // The caller is one of the workers; helpers cover the rest. `fn` and the
  // captured sizes outlive the tasks because the caller blocks below until
  // every helper finished.
  int helpers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_threads_ - 1), chunks - 1));
  state->outstanding = helpers;
  tasks_total_->Add(static_cast<uint64_t>(helpers) + 1);
  for (int i = 0; i < helpers; ++i) {
    pool_->Submit([state, worker] {
      worker();
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->outstanding == 0) state->done.notify_all();
    });
  }
  worker();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] { return state->outstanding == 0; });
  return chunks;
}

// -------------------------------------------------- radix partitioner --

std::optional<RadixPartitioner> RadixPartitioner::Plan(
    int radix_bits, const ColumnSet& a, const std::vector<SortKey>& a_keys,
    const ColumnSet* b, const std::vector<SortKey>* b_keys) {
  if (a_keys.empty() || a_keys.size() > 2) return std::nullopt;
  if (b != nullptr && b_keys->size() != a_keys.size()) return std::nullopt;
  RadixPartitioner part;
  for (size_t k = 0; k < a_keys.size(); ++k) {
    Field f{a_keys[k].descending, 0, 0, 0};
    bool seen = false;
    const ColumnSet* sides[2] = {&a, b};
    const std::vector<SortKey>* side_keys[2] = {&a_keys, b_keys};
    for (int s = 0; s < 2; ++s) {
      if (sides[s] == nullptr) continue;
      const SortKey& key = (*side_keys[s])[k];
      if (key.descending != f.desc) return std::nullopt;
      const ColumnData& col = sides[s]->col(key.col);
      if (col.type != TypeId::kInt32 && col.type != TypeId::kInt64) {
        return std::nullopt;
      }
      size_t n = sides[s]->num_rows();
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) return std::nullopt;
        int64_t v = IntAt(col, i);
        if (!seen) {
          f.min = f.max = v;
          seen = true;
        } else {
          f.min = std::min(f.min, v);
          f.max = std::max(f.max, v);
        }
      }
    }
    uint64_t range =
        static_cast<uint64_t>(f.max) - static_cast<uint64_t>(f.min);
    f.bits = range == 0 ? 0 : std::bit_width(range);
    part.total_bits_ += f.bits;
    part.fields_.push_back(f);
  }
  if (part.total_bits_ > 64) return std::nullopt;
  int pbits = std::min(std::max(radix_bits, 0), part.total_bits_);
  part.shift_ = part.total_bits_ - pbits;
  part.num_partitions_ = 1 << pbits;
  return part;
}

uint64_t RadixPartitioner::PackRow(const ColumnSet& rows,
                                   const std::vector<SortKey>& keys,
                                   size_t row) const {
  uint64_t word = 0;
  for (size_t k = 0; k < fields_.size(); ++k) {
    const Field& f = fields_[k];
    uint64_t v = static_cast<uint64_t>(IntAt(rows.col(keys[k].col), row));
    uint64_t field = f.desc ? static_cast<uint64_t>(f.max) - v
                            : v - static_cast<uint64_t>(f.min);
    word = (word << f.bits) | field;
  }
  return word;
}

RadixPartitions RadixPartitioner::Scatter(const ColumnSet& rows,
                                          const std::vector<SortKey>& keys,
                                          MorselDispatcher* dispatcher,
                                          ParallelOpStats* stats) const {
  FOCUS_CHECK(keys.size() == fields_.size(),
              "Scatter key arity differs from Plan");
  RadixPartitions out;
  out.num_partitions = num_partitions_;
  out.key_bits = shift_;
  out.offsets.assign(num_partitions_ + 1, 0);
  size_t n = rows.num_rows();
  out.packed.resize(n);
  out.idx.resize(n);
  if (n == 0) return out;

  size_t chunk = static_cast<size_t>(dispatcher->morsel_rows());
  size_t chunks = (n + chunk - 1) / chunk;
  // Pass 1: pack every row and count per-(chunk, partition) occupancy.
  std::vector<std::vector<size_t>> hist(
      chunks, std::vector<size_t>(num_partitions_, 0));
  stats->morsels += dispatcher->ParallelFor(n, chunk, [&](size_t b, size_t e) {
    std::vector<size_t>& h = hist[b / chunk];
    for (size_t i = b; i < e; ++i) {
      uint64_t word = PackRow(rows, keys, i);
      out.packed[i] = word;
      ++h[word >> shift_];
    }
  });
  // Serial prefix sums: chunk c's rows of partition p start at start[c][p],
  // laid out partition-major then chunk-major — the stable scatter order.
  std::vector<std::vector<size_t>> start(chunks,
                                         std::vector<size_t>(num_partitions_));
  size_t run = 0;
  for (int p = 0; p < num_partitions_; ++p) {
    out.offsets[p] = run;
    for (size_t c = 0; c < chunks; ++c) {
      start[c][p] = run;
      run += hist[c][p];
    }
  }
  out.offsets[num_partitions_] = run;
  // Pass 2: scatter row indices into their reserved (disjoint) slots.
  stats->morsels += dispatcher->ParallelFor(n, chunk, [&](size_t b, size_t e) {
    std::vector<size_t>& s = start[b / chunk];
    for (size_t i = b; i < e; ++i) {
      out.idx[s[out.packed[i] >> shift_]++] = static_cast<int64_t>(i);
    }
  });

  stats->partitions =
      std::max(stats->partitions, static_cast<uint64_t>(num_partitions_));
  obs::MetricsRegistry* reg = BatchMetricsRegistry();
  obs::Counter* partitions_total =
      reg->GetCounter("focus_sql_parallel_partitions_total");
  obs::Histogram* partition_rows =
      reg->GetHistogram("focus_sql_parallel_partition_rows");
  partitions_total->Add(num_partitions_);
  for (int p = 0; p < num_partitions_; ++p) {
    uint64_t rows_p = out.offsets[p + 1] - out.offsets[p];
    partition_rows->Observe(rows_p);
    stats->max_partition_rows = std::max(stats->max_partition_rows, rows_p);
  }
  return out;
}

// ------------------------------------------------ parallel table scan --

ParallelTableScan::ParallelTableScan(const Table* table,
                                     MorselDispatcher* dispatcher,
                                     std::vector<int> cols, int batch_rows)
    : BatchOperator("parallel_scan"),
      table_(table),
      dispatcher_(dispatcher),
      cols_(std::move(cols)),
      batch_rows_(batch_rows) {
  if (cols_.empty()) {
    schema_ = table_->schema();
    for (int i = 0; i < schema_.num_columns(); ++i) cols_.push_back(i);
  } else {
    std::vector<Column> pruned;
    pruned.reserve(cols_.size());
    for (int c : cols_) pruned.push_back(table_->schema().column(c));
    schema_ = Schema(std::move(pruned));
  }
}

Status ParallelTableScan::Open() {
  rows_ = ColumnSet();
  pos_ = 0;
  loaded_ = false;
  return Status::OK();
}

void ParallelTableScan::Close() { rows_ = ColumnSet(); }

Result<bool> ParallelTableScan::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    std::vector<std::string> records;
    FOCUS_RETURN_IF_ERROR(table_->ScanRecords(&records));
    size_t n = records.size();
    size_t chunk = static_cast<size_t>(dispatcher_->morsel_rows());
    size_t chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
    // One independently-constructed ColumnSet per chunk: copying a
    // ColumnSet shares its reference-counted columns, so a fill
    // constructor would alias every slot to one set.
    std::vector<ColumnSet> parts;
    parts.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) parts.emplace_back(schema_);
    std::vector<Status> errors(chunks);
    stats_.morsels +=
        dispatcher_->ParallelFor(n, chunk, [&](size_t b, size_t e) {
          size_t c = b / chunk;
          ColumnSet& part = parts[c];
          for (size_t i = b; i < e; ++i) {
            auto tuple = Tuple::Deserialize(table_->schema(), records[i]);
            if (!tuple.ok()) {
              errors[c] = tuple.status();
              return;
            }
            for (size_t k = 0; k < cols_.size(); ++k) {
              part.mutable_col(static_cast<int>(k))
                  ->AppendValue(tuple.value().Get(cols_[k]));
            }
          }
        });
    FOCUS_RETURN_IF_ERROR(FirstError(errors));
    rows_ = ColumnSet(schema_);
    for (const ColumnSet& part : parts) AppendSet(part, &rows_);
  }
  return EmitChunk(rows_, &pos_, batch_rows_, out);
}

// --------------------------------------------- parallel filter/project --

Status ParallelFilter::Open() {
  staged_.clear();
  pos_ = 0;
  loaded_ = false;
  return child_->Open();
}

void ParallelFilter::Close() {
  staged_.clear();
  child_->Close();
}

Result<bool> ParallelFilter::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    std::vector<Batch> in;
    FOCUS_RETURN_IF_ERROR(DrainBatches(child_.get(), &in));
    staged_.assign(in.size(), Batch());
    stats_.morsels +=
        dispatcher_->ParallelFor(in.size(), 1, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            std::vector<int64_t> sel;
            pred_(in[i], &sel);
            if (sel.empty()) continue;
            if (sel.size() == in[i].num_rows()) {
              for (int c = 0; c < in[i].num_columns(); ++c) {
                staged_[i].AddColumn(in[i].col_ptr(c));
              }
            } else {
              for (int c = 0; c < in[i].num_columns(); ++c) {
                staged_[i].AddColumn(Gather(in[i].col(c), sel));
              }
            }
          }
        });
  }
  while (pos_ < staged_.size()) {
    Batch& b = staged_[pos_++];
    if (b.num_rows() == 0) continue;
    *out = std::move(b);
    return true;
  }
  return false;
}

ParallelProject::ParallelProject(BatchOperatorPtr child,
                                 std::vector<BatchExpr> exprs,
                                 MorselDispatcher* dispatcher)
    : BatchOperator("parallel_project"),
      child_(std::move(child)),
      exprs_(std::move(exprs)),
      dispatcher_(dispatcher) {
  std::vector<Column> cols;
  cols.reserve(exprs_.size());
  for (const BatchExpr& e : exprs_) cols.push_back({e.name, e.type});
  schema_ = Schema(std::move(cols));
}

Status ParallelProject::Open() {
  staged_.clear();
  pos_ = 0;
  loaded_ = false;
  return child_->Open();
}

void ParallelProject::Close() {
  staged_.clear();
  child_->Close();
}

Result<bool> ParallelProject::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    std::vector<Batch> in;
    FOCUS_RETURN_IF_ERROR(DrainBatches(child_.get(), &in));
    staged_.assign(in.size(), Batch());
    stats_.morsels +=
        dispatcher_->ParallelFor(in.size(), 1, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            for (const BatchExpr& expr : exprs_) {
              staged_[i].AddColumn(expr.eval(in[i]));
            }
          }
        });
  }
  while (pos_ < staged_.size()) {
    Batch& b = staged_[pos_++];
    if (b.num_rows() == 0) continue;
    *out = std::move(b);
    return true;
  }
  return false;
}

// ------------------------------------------------------ parallel sort --

Status ParallelSort::Open() {
  rows_ = ColumnSet();
  order_.clear();
  pos_ = 0;
  loaded_ = false;
  return child_->Open();
}

void ParallelSort::Close() {
  rows_ = ColumnSet();
  order_.clear();
  child_->Close();
}

Result<bool> ParallelSort::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    FOCUS_RETURN_IF_ERROR(DrainInto(child_.get(), &rows_));
    auto plan = RadixPartitioner::Plan(radix_bits_, rows_, keys_);
    if (!plan.has_value()) {
      // Unpackable keys: the serial engine's own sort, bit-exact by
      // construction.
      std::vector<uint64_t> packed;
      SortPermutation(rows_, keys_, &order_, &packed);
    } else {
      RadixPartitions parts = plan->Scatter(rows_, keys_, dispatcher_,
                                            &stats_);
      stats_.morsels += dispatcher_->ParallelFor(
          parts.num_partitions, 1, [&](size_t b, size_t e) {
            for (size_t p = b; p < e; ++p) SortPartition(&parts, p);
          });
      order_ = std::move(parts.idx);
    }
  }
  if (pos_ >= order_.size()) return false;
  size_t end =
      std::min(order_.size(), pos_ + static_cast<size_t>(batch_rows_));
  for (int i = 0; i < rows_.num_columns(); ++i) {
    out->AddColumn(Gather(rows_.col(i), order_.data() + pos_, end - pos_));
  }
  pos_ = end;
  return true;
}

// ------------------------------------------------ parallel merge join --

ParallelMergeJoin::ParallelMergeJoin(BatchOperatorPtr left,
                                     BatchOperatorPtr right,
                                     std::vector<int> left_keys,
                                     std::vector<int> right_keys,
                                     MorselDispatcher* dispatcher,
                                     bool left_outer, int radix_bits,
                                     int batch_rows)
    : BatchOperator("parallel_merge_join"),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      dispatcher_(dispatcher),
      left_outer_(left_outer),
      radix_bits_(radix_bits),
      batch_rows_(batch_rows),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status ParallelMergeJoin::Open() {
  lrows_ = ColumnSet();
  rrows_ = ColumnSet();
  li_.clear();
  ri_.clear();
  pos_ = 0;
  loaded_ = false;
  FOCUS_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

void ParallelMergeJoin::Close() {
  lrows_ = ColumnSet();
  rrows_ = ColumnSet();
  li_.clear();
  ri_.clear();
  left_->Close();
  right_->Close();
}

Status ParallelMergeJoin::Load() {
  FOCUS_RETURN_IF_ERROR(DrainInto(left_.get(), &lrows_));
  FOCUS_RETURN_IF_ERROR(DrainInto(right_.get(), &rrows_));
  std::vector<SortKey> lkeys, rkeys;
  for (int c : left_keys_) lkeys.push_back(SortKey{c, false});
  for (int c : right_keys_) rkeys.push_back(SortKey{c, false});
  auto plan =
      RadixPartitioner::Plan(radix_bits_, lrows_, lkeys, &rrows_, &rkeys);
  if (!plan.has_value()) {
    // Unpackable keys: sort both sides and merge on the query thread with
    // the serial kernels.
    std::vector<int64_t> lorder, rorder;
    std::vector<uint64_t> packed;
    SortPermutation(lrows_, lkeys, &lorder, &packed);
    SortPermutation(rrows_, rkeys, &rorder, &packed);
    MergeJoinIndices(lrows_, rrows_, left_keys_, right_keys_, left_outer_,
                     lorder.data(), lorder.size(), rorder.data(),
                     rorder.size(), &li_, &ri_);
    return Status::OK();
  }
  RadixPartitions lparts = plan->Scatter(lrows_, lkeys, dispatcher_, &stats_);
  RadixPartitions rparts = plan->Scatter(rrows_, rkeys, dispatcher_, &stats_);
  int num_p = lparts.num_partitions;
  std::vector<std::vector<int64_t>> lis(num_p), ris(num_p);
  stats_.morsels += dispatcher_->ParallelFor(num_p, 1, [&](size_t b,
                                                           size_t e) {
    for (size_t p = b; p < e; ++p) {
      size_t ln = lparts.offsets[p + 1] - lparts.offsets[p];
      if (ln == 0) continue;  // no left rows: nothing joins (even outer)
      SortPartition(&lparts, p);
      SortPartition(&rparts, p);
      MergeJoinIndices(lrows_, rrows_, left_keys_, right_keys_, left_outer_,
                       lparts.idx.data() + lparts.offsets[p], ln,
                       rparts.idx.data() + rparts.offsets[p],
                       rparts.offsets[p + 1] - rparts.offsets[p], &lis[p],
                       &ris[p]);
    }
  });
  size_t total = 0;
  for (int p = 0; p < num_p; ++p) total += lis[p].size();
  li_.reserve(total);
  ri_.reserve(total);
  for (int p = 0; p < num_p; ++p) {
    li_.insert(li_.end(), lis[p].begin(), lis[p].end());
    ri_.insert(ri_.end(), ris[p].begin(), ris[p].end());
  }
  return Status::OK();
}

Result<bool> ParallelMergeJoin::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    FOCUS_RETURN_IF_ERROR(Load());
  }
  if (pos_ >= li_.size()) return false;
  size_t end = std::min(li_.size(), pos_ + static_cast<size_t>(batch_rows_));
  size_t n = end - pos_;
  for (int i = 0; i < lrows_.num_columns(); ++i) {
    out->AddColumn(Gather(lrows_.col(i), li_.data() + pos_, n));
  }
  for (int i = 0; i < rrows_.num_columns(); ++i) {
    out->AddColumn(Gather(rrows_.col(i), ri_.data() + pos_, n));
  }
  pos_ = end;
  return true;
}

// ------------------------------------------------ parallel probe join --

ParallelProbeJoin::ParallelProbeJoin(BatchOperatorPtr left,
                                     BatchOperatorPtr right, int left_key,
                                     int right_key,
                                     MorselDispatcher* dispatcher,
                                     bool left_outer, int64_t dense_domain,
                                     int batch_rows)
    : BatchOperator("parallel_probe_join"),
      left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key),
      dispatcher_(dispatcher),
      left_outer_(left_outer),
      dense_domain_(dense_domain),
      batch_rows_(batch_rows),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status ParallelProbeJoin::Open() {
  lrows_ = ColumnSet();
  rrows_ = ColumnSet();
  li_.clear();
  ri_.clear();
  pos_ = 0;
  loaded_ = false;
  FOCUS_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

void ParallelProbeJoin::Close() {
  lrows_ = ColumnSet();
  rrows_ = ColumnSet();
  li_.clear();
  ri_.clear();
  left_->Close();
  right_->Close();
}

Status ParallelProbeJoin::Load() {
  FOCUS_RETURN_IF_ERROR(DrainInto(left_.get(), &lrows_));
  FOCUS_RETURN_IF_ERROR(DrainInto(right_.get(), &rrows_));
  DenseRunTable table;
  if (dense_domain_ > 0) {
    table = BuildDenseRunTable(rrows_.col(right_key_), dense_domain_);
  }
  const DenseRunTable* dense = dense_domain_ > 0 ? &table : nullptr;
  const size_t nl = lrows_.num_rows();
  const size_t chunk = static_cast<size_t>(dispatcher_->morsel_rows());
  const size_t num_morsels = nl == 0 ? 0 : (nl + chunk - 1) / chunk;
  std::vector<std::vector<int64_t>> lis(num_morsels), ris(num_morsels);
  // Each morsel probes its own left range; a key run split across morsel
  // boundaries still emits the same pairs because every left row finds
  // its right run independently of its neighbours.
  stats_.morsels += dispatcher_->ParallelFor(nl, chunk, [&](size_t b,
                                                            size_t e) {
    size_t m = b / chunk;
    ProbeJoinIndices(lrows_, rrows_, left_key_, right_key_, left_outer_,
                     dense, b, e, &lis[m], &ris[m]);
  });
  size_t total = 0;
  for (const auto& v : lis) total += v.size();
  li_.reserve(total);
  ri_.reserve(total);
  for (size_t m = 0; m < num_morsels; ++m) {
    li_.insert(li_.end(), lis[m].begin(), lis[m].end());
    ri_.insert(ri_.end(), ris[m].begin(), ris[m].end());
  }
  return Status::OK();
}

Result<bool> ParallelProbeJoin::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    FOCUS_RETURN_IF_ERROR(Load());
  }
  if (pos_ >= li_.size()) return false;
  size_t end = std::min(li_.size(), pos_ + static_cast<size_t>(batch_rows_));
  size_t n = end - pos_;
  for (int i = 0; i < lrows_.num_columns(); ++i) {
    out->AddColumn(Gather(lrows_.col(i), li_.data() + pos_, n));
  }
  for (int i = 0; i < rrows_.num_columns(); ++i) {
    out->AddColumn(Gather(rrows_.col(i), ri_.data() + pos_, n));
  }
  pos_ = end;
  return true;
}

// ------------------------------------------------- parallel hash join --

ParallelHashJoin::ParallelHashJoin(BatchOperatorPtr left,
                                   BatchOperatorPtr right,
                                   std::vector<int> left_keys,
                                   std::vector<int> right_keys,
                                   MorselDispatcher* dispatcher,
                                   int radix_bits, int batch_rows)
    : BatchOperator("parallel_hash_join"),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      dispatcher_(dispatcher),
      radix_bits_(radix_bits),
      batch_rows_(batch_rows),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status ParallelHashJoin::Open() {
  lrows_ = ColumnSet();
  rrows_ = ColumnSet();
  li_.clear();
  ri_.clear();
  pos_ = 0;
  loaded_ = false;
  FOCUS_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

void ParallelHashJoin::Close() {
  lrows_ = ColumnSet();
  rrows_ = ColumnSet();
  li_.clear();
  ri_.clear();
  left_->Close();
  right_->Close();
}

Result<bool> ParallelHashJoin::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    FOCUS_RETURN_IF_ERROR(DrainInto(left_.get(), &lrows_));
    FOCUS_RETURN_IF_ERROR(DrainInto(right_.get(), &rrows_));
    std::vector<SortKey> lkeys, rkeys;
    for (int c : left_keys_) lkeys.push_back(SortKey{c, false});
    for (int c : right_keys_) rkeys.push_back(SortKey{c, false});
    auto plan =
        RadixPartitioner::Plan(radix_bits_, lrows_, lkeys, &rrows_, &rkeys);
    if (!plan.has_value()) {
      return Status::InvalidArgument(
          "parallel hash join requires packable integer keys "
          "(use the merge join for NULLs or wide keys)");
    }
    RadixPartitions lparts =
        plan->Scatter(lrows_, lkeys, dispatcher_, &stats_);
    RadixPartitions rparts =
        plan->Scatter(rrows_, rkeys, dispatcher_, &stats_);
    int num_p = lparts.num_partitions;
    std::vector<std::vector<int64_t>> lis(num_p), ris(num_p);
    stats_.morsels += dispatcher_->ParallelFor(num_p, 1, [&](size_t b,
                                                             size_t e) {
      for (size_t p = b; p < e; ++p) {
        size_t rb = rparts.offsets[p], re = rparts.offsets[p + 1];
        size_t lb = lparts.offsets[p], le = lparts.offsets[p + 1];
        if (rb == re || lb == le) continue;
        // Build on the right slice in arrival order, probe the left slice
        // in arrival order — deterministic regardless of thread count.
        std::unordered_map<uint64_t, std::vector<int64_t>> build;
        for (size_t i = rb; i < re; ++i) {
          int64_t row = rparts.idx[i];
          build[rparts.packed[row]].push_back(row);
        }
        for (size_t i = lb; i < le; ++i) {
          int64_t row = lparts.idx[i];
          auto it = build.find(lparts.packed[row]);
          if (it == build.end()) continue;
          for (int64_t rrow : it->second) {
            lis[p].push_back(row);
            ris[p].push_back(rrow);
          }
        }
      }
    });
    for (int p = 0; p < num_p; ++p) {
      li_.insert(li_.end(), lis[p].begin(), lis[p].end());
      ri_.insert(ri_.end(), ris[p].begin(), ris[p].end());
    }
  }
  if (pos_ >= li_.size()) return false;
  size_t end = std::min(li_.size(), pos_ + static_cast<size_t>(batch_rows_));
  size_t n = end - pos_;
  for (int i = 0; i < lrows_.num_columns(); ++i) {
    out->AddColumn(Gather(lrows_.col(i), li_.data() + pos_, n));
  }
  for (int i = 0; i < rrows_.num_columns(); ++i) {
    out->AddColumn(Gather(rrows_.col(i), ri_.data() + pos_, n));
  }
  pos_ = end;
  return true;
}

// -------------------------------------------- parallel sort aggregate --

ParallelSortAggregate::ParallelSortAggregate(
    BatchOperatorPtr child, std::vector<SortKey> sort_keys,
    std::vector<int> group_cols, std::vector<AggSpec> aggs,
    MorselDispatcher* dispatcher, int radix_bits, int batch_rows)
    : BatchOperator("parallel_sort_aggregate"),
      child_(std::move(child)),
      sort_keys_(std::move(sort_keys)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      dispatcher_(dispatcher),
      radix_bits_(radix_bits),
      batch_rows_(batch_rows),
      schema_(SortedAggSchema(child_->schema(), group_cols_, aggs_)) {}

Status ParallelSortAggregate::Open() {
  agg_ = ColumnSet();
  pos_ = 0;
  loaded_ = false;
  return child_->Open();
}

void ParallelSortAggregate::Close() {
  agg_ = ColumnSet();
  child_->Close();
}

Result<bool> ParallelSortAggregate::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    ColumnSet rows;
    FOCUS_RETURN_IF_ERROR(DrainInto(child_.get(), &rows));
    bool use_packed = GroupsMatchSortKeys(group_cols_, sort_keys_);
    auto plan = RadixPartitioner::Plan(radix_bits_, rows, sort_keys_);
    agg_ = ColumnSet(schema_);
    if (!plan.has_value()) {
      std::vector<int64_t> order;
      std::vector<uint64_t> packed;
      SortPermutation(rows, sort_keys_, &order, &packed);
      AggregateSortedRuns(rows, order, 0, order.size(),
                          use_packed && !packed.empty() ? packed.data()
                                                        : nullptr,
                          group_cols_, aggs_, &agg_);
    } else {
      RadixPartitions parts =
          plan->Scatter(rows, sort_keys_, dispatcher_, &stats_);
      int num_p = parts.num_partitions;
      // Independently constructed per partition (a ColumnSet copy would
      // share its reference-counted columns across all slots).
      std::vector<ColumnSet> outs;
      outs.reserve(num_p);
      for (int p = 0; p < num_p; ++p) outs.emplace_back(schema_);
      stats_.morsels += dispatcher_->ParallelFor(num_p, 1, [&](size_t b,
                                                               size_t e) {
        for (size_t p = b; p < e; ++p) {
          if (parts.offsets[p] == parts.offsets[p + 1]) continue;
          SortPartition(&parts, p);
          // Groups never span partitions: equal keys share a packed word,
          // hence a partition, so per-partition runs are global runs.
          AggregateSortedRuns(rows, parts.idx, parts.offsets[p],
                              parts.offsets[p + 1],
                              use_packed ? parts.packed.data() : nullptr,
                              group_cols_, aggs_, &outs[p]);
        }
      });
      for (const ColumnSet& part : outs) AppendSet(part, &agg_);
    }
  }
  return EmitChunk(agg_, &pos_, batch_rows_, out);
}

// ----------------------------------------------------------- exchange --

ExchangeGather::ExchangeGather(std::vector<BatchOperatorPtr> children,
                               MorselDispatcher* dispatcher, int batch_rows)
    : BatchOperator("exchange_gather"),
      children_(std::move(children)),
      dispatcher_(dispatcher),
      batch_rows_(batch_rows) {
  FOCUS_CHECK(!children_.empty(), "ExchangeGather needs >= 1 child");
  schema_ = children_[0]->schema();
}

Status ExchangeGather::Open() {
  rows_ = ColumnSet();
  pos_ = 0;
  loaded_ = false;
  for (auto& child : children_) FOCUS_RETURN_IF_ERROR(child->Open());
  return Status::OK();
}

void ExchangeGather::Close() {
  rows_ = ColumnSet();
  for (auto& child : children_) child->Close();
}

Result<bool> ExchangeGather::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    size_t n = children_.size();
    std::vector<ColumnSet> sets(n);
    std::vector<Status> errors(n);
    stats_.morsels += dispatcher_->ParallelFor(n, 1, [&](size_t b,
                                                         size_t e) {
      for (size_t i = b; i < e; ++i) {
        errors[i] = DrainInto(children_[i].get(), &sets[i]);
      }
    });
    FOCUS_RETURN_IF_ERROR(FirstError(errors));
    rows_ = ColumnSet(schema_);
    for (const ColumnSet& set : sets) AppendSet(set, &rows_);
  }
  return EmitChunk(rows_, &pos_, batch_rows_, out);
}

ExchangeMerge::ExchangeMerge(std::vector<BatchOperatorPtr> children,
                             std::vector<SortKey> keys,
                             MorselDispatcher* dispatcher, int batch_rows)
    : BatchOperator("exchange_merge"),
      children_(std::move(children)),
      keys_(std::move(keys)),
      dispatcher_(dispatcher),
      batch_rows_(batch_rows) {
  FOCUS_CHECK(!children_.empty(), "ExchangeMerge needs >= 1 child");
  schema_ = children_[0]->schema();
}

Status ExchangeMerge::Open() {
  rows_ = ColumnSet();
  pos_ = 0;
  loaded_ = false;
  for (auto& child : children_) FOCUS_RETURN_IF_ERROR(child->Open());
  return Status::OK();
}

void ExchangeMerge::Close() {
  rows_ = ColumnSet();
  for (auto& child : children_) child->Close();
}

Result<bool> ExchangeMerge::DoNextBatch(Batch* out) {
  out->Reset();
  if (!loaded_) {
    loaded_ = true;
    size_t n = children_.size();
    std::vector<ColumnSet> sets(n);
    std::vector<Status> errors(n);
    stats_.morsels += dispatcher_->ParallelFor(n, 1, [&](size_t b,
                                                         size_t e) {
      for (size_t i = b; i < e; ++i) {
        errors[i] = DrainInto(children_[i].get(), &sets[i]);
      }
    });
    FOCUS_RETURN_IF_ERROR(FirstError(errors));
    // K-way merge; ties go to the lower child index, so the result equals
    // a stable sort of the child-order concatenation.
    auto less_than = [&](size_t ca, size_t ra, size_t cb, size_t rb) {
      for (const SortKey& k : keys_) {
        int c = CompareColumnRows(sets[ca].col(k.col), ra, sets[cb].col(k.col),
                                  rb);
        if (k.descending) c = -c;
        if (c != 0) return c < 0;
      }
      return ca < cb;
    };
    rows_ = ColumnSet(schema_);
    std::vector<size_t> at(n, 0);
    for (;;) {
      int best = -1;
      for (size_t c = 0; c < n; ++c) {
        if (at[c] >= sets[c].num_rows()) continue;
        if (best < 0 ||
            less_than(c, at[c], static_cast<size_t>(best), at[best])) {
          best = static_cast<int>(c);
        }
      }
      if (best < 0) break;
      for (int i = 0; i < rows_.num_columns(); ++i) {
        rows_.mutable_col(i)->AppendFrom(sets[best].col(i), at[best]);
      }
      ++at[best];
    }
  }
  return EmitChunk(rows_, &pos_, batch_rows_, out);
}

}  // namespace focus::sql
