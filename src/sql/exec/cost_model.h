// Cost-based access-path selection for the hot join nodes (Fig. 8).
//
// The paper's central systems claim is that the right access path —
// index probe vs sort-merge vs hash join over DOCUMENT/STAT/LINK —
// dominates crawler-side query cost, and that the winner flips as table
// sizes and memory budgets change. The repo used to hard-code those
// choices per plan; this model makes them automatic, the way Hyrise's
// cost-model feature extractor does: a handful of per-path formulas over
// table stats the dictionary layer exposes for free (row counts, distinct
// counts → join selectivity, sortedness, buffer-pool budget), evaluated
// once at plan-build time.
//
// The formulas are unit costs (abstract row touches), calibrated so the
// crossovers land where measurement puts them (sql_cost_model_test pits
// the chosen path against wall-clock on the Fig-8 shapes):
//   sort-merge:  sort whichever inputs are unsorted + scan both + emit
//   index probe: scan the outer + one binary search per outer key run
//                into the sorted inner (random access: penalized when the
//                inner exceeds the buffer budget); a dense code domain
//                (dictionary-encoded key) turns the search into an O(1)
//                run-table lookup
//   hash join:   build the inner + probe the outer (+ spill partitions
//                when the build side exceeds the buffer budget)
//
// Every choice is recorded to focus_sql_cost_* metrics and annotated on
// the EXPLAIN ANALYZE node (chosen path + estimated rows next to actual).
#ifndef FOCUS_SQL_EXEC_COST_MODEL_H_
#define FOCUS_SQL_EXEC_COST_MODEL_H_

#include <cstdint>
#include <initializer_list>

#include "sql/exec/batch_ops.h"

namespace focus::sql {

enum class AccessPath { kIndexProbe, kSortMerge, kHashJoin };

// Stable short name, used in EXPLAIN output and metric labels:
// "index-probe", "sort-merge", "hash".
const char* AccessPathName(AccessPath path);

// Per-node stats the chooser consumes. "left" is the outer (probe/scan)
// side, "right" the inner (searched/built) side.
struct JoinStats {
  uint64_t left_rows = 0;
  uint64_t left_distinct = 0;  // distinct outer join keys (0 = unknown)
  uint64_t right_rows = 0;
  uint64_t right_distinct = 0;  // distinct inner join keys (0 = unknown)
  bool left_sorted = true;      // already sorted on the join key?
  bool right_sorted = true;
  // Dense dictionary-code domain size of the inner key (0 = none): probes
  // become O(1) run-table lookups over [0, right_domain).
  uint64_t right_domain = 0;
  // Inner-side footprint vs the memory budget (0 budget = unlimited).
  // Above budget, index probes thrash (random access) and hash joins
  // spill partitions.
  uint64_t right_bytes = 0;
  uint64_t buffer_bytes = 0;
};

struct PathChoice {
  AccessPath path = AccessPath::kSortMerge;
  uint64_t est_rows = 0;  // estimated join cardinality
  double cost = 0;        // unit cost of the chosen path
};

// Estimated join cardinality under the containment assumption:
// |L ⋈ R| ≈ |L|·|R| / max(d_L, d_R).
uint64_t EstimateJoinRows(const JoinStats& s);

// Unit cost of running `path` on shape `s` (strictly monotone in both
// row counts; sql_cost_model_test asserts this).
double JoinPathCost(AccessPath path, const JoinStats& s);

// Cheapest allowed path plus its cardinality estimate. Plan builders
// restrict `allowed` to what preserves their ordering contract (e.g. a
// serial plan whose consumer needs merge order excludes hash).
PathChoice ChooseJoinPath(const JoinStats& s,
                          std::initializer_list<AccessPath> allowed = {
                              AccessPath::kIndexProbe,
                              AccessPath::kSortMerge});

// Records a plan-build-time choice to the batch metrics registry:
// focus_sql_cost_path_total{path=...,node=...} and
// focus_sql_cost_est_rows_total{node=...}.
void RecordPathChoice(const char* node, const PathChoice& choice);

// Records the actual cardinality observed at execution for the same node
// (focus_sql_cost_actual_rows_total{node=...}), the counterpart the
// estimate is judged against.
void RecordActualRows(const char* node, uint64_t rows);

// Transparent wrapper that counts the child's output rows and records
// them against `node` (RecordActualRows) when the plan closes, so every
// cost-model estimate has its measured counterpart in the metrics.
BatchOperatorPtr CountActualRows(const char* node, BatchOperatorPtr child);

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_COST_MODEL_H_
