// Hash-based GROUP BY aggregation.
//
// Supports the aggregates the paper's plans use: SUM, COUNT, AVG, MIN, MAX.
// Output rows carry the group columns followed by one column per aggregate;
// output order is unspecified (wrap in Sort when order matters).
#ifndef FOCUS_SQL_EXEC_AGGREGATE_H_
#define FOCUS_SQL_EXEC_AGGREGATE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sql/exec/operator.h"

namespace focus::sql {

enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggKind kind;
  // Input column; ignored for kCount (COUNT(*) semantics).
  int col = -1;
  std::string out_name;
};

class HashAggregate final : public Operator {
 public:
  HashAggregate(OperatorPtr child, std::vector<int> group_cols,
                std::vector<AggSpec> aggs);

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  struct AggState {
    double sum = 0;
    int64_t count = 0;
    bool has_minmax = false;
    Value min, max;
  };

  OperatorPtr child_;
  std::vector<int> group_cols_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  // std::map keyed on group values gives deterministic output order, which
  // keeps benchmark output stable run-to-run.
  struct GroupLess {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  std::map<std::vector<Value>, std::vector<AggState>, GroupLess> groups_;
  std::map<std::vector<Value>, std::vector<AggState>, GroupLess>::iterator
      emit_it_;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_AGGREGATE_H_
