// EXPLAIN-ANALYZE instrumentation for hand-built operator trees.
//
// The engine has no SQL parser, so there is no EXPLAIN statement either —
// instead, plan builders wrap each operator with Analyze(stats, label, op)
// and the wrapper records per-operator rows-out, Next calls, and inclusive
// time. The tree structure is recovered automatically: operators open
// parent-before-child, so each wrapper links itself to the wrapper whose
// Open() is on the stack when its own runs. Format() then renders the
// familiar plan report:
//
//   MergeJoin COMPLETE~PARTIAL   rows=40 next=41 total=1.93ms self=0.21ms
//   +- Sort COMPLETE (did,kcid)  rows=40 next=41 total=1.01ms self=0.33ms
//   ...
//
// This is how the paper's central claims become inspectable per run: the
// BulkProbe-vs-SingleProbe and join-vs-naive-distiller comparisons stop
// being aggregate seconds and decompose into per-operator cardinalities
// and time.
//
// Analyze(nullptr, ...) returns the operator unchanged — production plans
// pay nothing when no report is requested. Instrumented plans must run on
// one thread (plan execution already is single-threaded).
#ifndef FOCUS_SQL_EXEC_ANALYZE_H_
#define FOCUS_SQL_EXEC_ANALYZE_H_

#include <deque>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "sql/exec/batch_ops.h"
#include "sql/exec/operator.h"

namespace focus::sql {

class PlanStats {
 public:
  struct Node {
    std::string label;
    uint64_t rows_out = 0;
    uint64_t next_calls = 0;
    uint64_t open_micros = 0;  // inclusive of children
    uint64_t next_micros = 0;  // inclusive of children
    // Batch operators report batches instead of per-row Next calls.
    uint64_t batches = 0;
    bool is_batch = false;
    // Parallel operators (parallel.h) additionally report their morsel/
    // partition fan-out; all zero for serial operators. max_partition_rows
    // against rows_out/partitions shows partition skew at a glance.
    uint64_t morsels = 0;
    uint64_t partitions = 0;
    uint64_t max_partition_rows = 0;
    // Cost-model annotation (cost_model.h): the access path chosen at
    // plan-build time and its cardinality estimate, rendered next to the
    // actual rows_out so estimate quality is visible per node.
    std::string access_path;
    uint64_t est_rows = 0;
    bool has_cost = false;
    std::vector<Node*> children;
    bool has_parent = false;
  };

  PlanStats() = default;
  PlanStats(const PlanStats&) = delete;
  PlanStats& operator=(const PlanStats&) = delete;

  // Text report: one tree per root (an instrumented plan executed while
  // this PlanStats was attached), operators annotated with rows, calls,
  // and inclusive/self time.
  std::string Format() const;
  // The same report as JSON (array of node trees).
  std::string ToJson() const;

  // Roots in creation order (nodes never adopted by a parent).
  std::vector<const Node*> Roots() const;

 private:
  friend class AnalyzedOperator;
  friend class AnalyzedBatchOperator;

  Node* NewNode(std::string label);
  // Open-stack maintenance (single-threaded plan execution).
  void PushOpen(Node* node);
  void PopOpen();

  std::deque<Node> nodes_;
  std::vector<Node*> open_stack_;
};

// Wraps `child` so its execution is recorded into `stats` under `label`.
// When `stats` is null the child is returned unchanged (no overhead).
OperatorPtr Analyze(PlanStats* stats, std::string label, OperatorPtr child);

// The batch-engine counterpart: records rows, batches, and inclusive time
// per operator into the same tree (scalar and batch wrappers share the
// open stack, so mixed plans still render as one tree).
BatchOperatorPtr AnalyzeBatch(PlanStats* stats, std::string label,
                              BatchOperatorPtr child);

// AnalyzeBatch plus the cost-model annotation: the node renders
// `path=<access_path> est_rows=<n>` next to its actual row count. As with
// the plain wrappers, null `stats` returns the child unchanged.
BatchOperatorPtr AnalyzeBatchCost(PlanStats* stats, std::string label,
                                  BatchOperatorPtr child,
                                  const char* access_path,
                                  uint64_t est_rows);

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_ANALYZE_H_
