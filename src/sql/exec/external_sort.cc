#include "sql/exec/external_sort.h"

#include <algorithm>

namespace focus::sql {

ExternalSort::ExternalSort(OperatorPtr child, std::vector<SortKey> keys,
                           storage::BufferPool* pool,
                           size_t memory_budget_rows)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      pool_(pool),
      memory_budget_rows_(memory_budget_rows < 2 ? 2 : memory_budget_rows) {}

Status ExternalSort::SpillRun(std::vector<Tuple>* rows) {
  std::stable_sort(rows->begin(), rows->end(),
                   [this](const Tuple& a, const Tuple& b) {
                     return CompareOnKeys(a, b, keys_) < 0;
                   });
  FOCUS_ASSIGN_OR_RETURN(storage::HeapFile run,
                         storage::HeapFile::Create(pool_));
  for (const Tuple& t : *rows) {
    FOCUS_RETURN_IF_ERROR(run.Insert(t.Serialize(schema())).status());
  }
  runs_.push_back(std::move(run));
  rows->clear();
  return Status::OK();
}

Status ExternalSort::AdvanceRun(size_t idx) {
  RunCursor& cursor = cursors_[idx];
  storage::Rid rid;
  std::string record;
  if (!cursor.it.Next(&rid, &record)) {
    FOCUS_RETURN_IF_ERROR(cursor.it.status());
    cursor.valid = false;
    return Status::OK();
  }
  FOCUS_ASSIGN_OR_RETURN(cursor.current,
                         Tuple::Deserialize(schema(), record));
  cursor.valid = true;
  return Status::OK();
}

Status ExternalSort::Open() {
  FOCUS_RETURN_IF_ERROR(child_->Open());
  runs_.clear();
  cursors_.clear();
  tail_.clear();
  tail_pos_ = 0;

  std::vector<Tuple> buffer;
  buffer.reserve(memory_budget_rows_);
  Tuple t;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, child_->Next(&t));
    if (!more) break;
    buffer.push_back(t);
    if (buffer.size() >= memory_budget_rows_) {
      FOCUS_RETURN_IF_ERROR(SpillRun(&buffer));
    }
  }
  std::stable_sort(buffer.begin(), buffer.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     return CompareOnKeys(a, b, keys_) < 0;
                   });
  tail_ = std::move(buffer);

  last_num_runs_ = static_cast<int>(runs_.size());
  // Cursors only after runs_ stops growing (iterators hold pointers).
  cursors_.reserve(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    cursors_.push_back(RunCursor{runs_[i].Scan(), Tuple(), false});
  }
  for (size_t i = 0; i < cursors_.size(); ++i) {
    FOCUS_RETURN_IF_ERROR(AdvanceRun(i));
  }
  return Status::OK();
}

Result<bool> ExternalSort::Next(Tuple* out) {
  // Pick the smallest head among run cursors and the in-memory tail;
  // ties resolve to the earliest run (stability).
  int best = -1;
  for (size_t i = 0; i < cursors_.size(); ++i) {
    if (!cursors_[i].valid) continue;
    if (best < 0 ||
        CompareOnKeys(cursors_[i].current, cursors_[best].current, keys_) <
            0) {
      best = static_cast<int>(i);
    }
  }
  bool tail_has = tail_pos_ < tail_.size();
  if (best < 0 && !tail_has) return false;
  if (best >= 0 &&
      (!tail_has ||
       CompareOnKeys(cursors_[best].current, tail_[tail_pos_], keys_) <=
           0)) {
    *out = cursors_[best].current;
    FOCUS_RETURN_IF_ERROR(AdvanceRun(best));
    return true;
  }
  *out = tail_[tail_pos_++];
  return true;
}

void ExternalSort::Close() {
  runs_.clear();
  cursors_.clear();
  tail_.clear();
  child_->Close();
}

}  // namespace focus::sql
