// Morsel-driven parallel batch execution.
//
// The vectorized operators (batch_ops.h) run one plan on one thread; the
// operators here run the same work split across a ThreadPool while
// producing bit-identical output, so `SetEngine(kParallel)` is a pure
// performance knob. The design follows the morsel-driven model: inputs are
// materialized, split into fixed-size morsels (or key-range partitions),
// and tasks pull the next piece from a shared counter so a slow morsel
// does not idle the other workers.
//
// Determinism contract (how bit-exactness with the serial engine holds):
//  - Partitioning is by key *value range* (the top bits of the same
//    order-preserving packed sort word the serial sort uses), never by
//    hash, so partition order is key order and concatenating per-partition
//    results reproduces the serial output order exactly.
//  - The scatter is stable: within a partition, rows keep arrival order,
//    so per-partition stable sorts concatenate to the global stable sort.
//  - Sorted-run aggregation never splits a group across partitions (equal
//    keys share a packed word, hence a partition), so floating-point sums
//    accumulate in exactly the serial visit order — no reassociation.
//  - Keys that cannot be packed (non-integer, NULLs, > 64 combined bits)
//    fall back to the serial kernels on the query thread, which are the
//    serial engine's own code paths.
//
// Every operator reports per-morsel/per-partition counters to the obs
// registry (focus_sql_parallel_*) and exposes them through
// BatchOperator::parallel_stats() for EXPLAIN ANALYZE.
#ifndef FOCUS_SQL_EXEC_PARALLEL_H_
#define FOCUS_SQL_EXEC_PARALLEL_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/exec/batch_ops.h"
#include "util/thread_pool.h"

namespace focus::sql {

// Rows per morsel: large enough that task handoff is noise, small enough
// that ~hundreds of morsels exist for the paper-scale inputs and the pool
// load-balances skew.
inline constexpr int kDefaultMorselRows = 4096;

// log2 of the radix partition count for partitioned sorts/joins/
// aggregates: 32 partitions keeps every partition cache-friendly at the
// paper's table sizes while leaving the pool enough pieces to balance.
inline constexpr int kDefaultRadixBits = 5;

// Schedules morsels onto a private ThreadPool. `num_threads` is the total
// worker count including the calling thread (the caller participates), so
// 1 means inline serial execution and no pool is created.
class MorselDispatcher {
 public:
  explicit MorselDispatcher(int num_threads,
                            int morsel_rows = kDefaultMorselRows);

  int num_threads() const { return num_threads_; }
  int morsel_rows() const { return morsel_rows_; }

  // Runs fn(begin, end) for every chunk of `chunk` rows covering [0, n).
  // Workers pull the next chunk index from a shared counter; the caller
  // participates and returns only once every chunk has finished (the
  // completion handshake gives the caller happens-before over all task
  // writes). fn must write only to disjoint preallocated slots so the
  // result is independent of scheduling. Returns the number of chunks.
  // Runs inline (same results) when there is one thread or one chunk, or
  // when called from a task already running on this dispatcher's pool —
  // re-entrant dispatch would deadlock waiting on its own workers.
  uint64_t ParallelFor(size_t n, size_t chunk,
                       const std::function<void(size_t, size_t)>& fn);

 private:
  int num_threads_;
  int morsel_rows_;
  std::unique_ptr<ThreadPool> pool_;  // num_threads - 1 workers
  obs::Counter* morsels_total_ = nullptr;
  obs::Counter* tasks_total_ = nullptr;
};

// Row indices of one input grouped into key-range partitions: partition p
// owns idx[offsets[p] .. offsets[p+1]), stable (arrival order) within the
// partition. `packed` holds the row-indexed order-preserving sort word of
// every row (equal words <=> equal key values).
struct RadixPartitions {
  int num_partitions = 0;
  // Bits of the packed word still varying within one partition (the high
  // bits are the partition id): sorting a partition only orders these.
  int key_bits = 0;
  std::vector<int64_t> idx;
  std::vector<size_t> offsets;
  std::vector<uint64_t> packed;
};

// Order-preserving MSB-radix partition function over integer sort keys.
// Plan() computes the combined per-key value ranges of one or two inputs
// (both join sides must agree on the partition function), so the same
// key value lands in the same partition on either side; partition id is
// the top `radix_bits` of the packed sort word, making partitions
// contiguous key ranges in sort order.
class RadixPartitioner {
 public:
  // Returns nullopt when the keys cannot be packed: not 1-2 integer
  // columns, NULLs present, descending flags differing across sides, or
  // combined ranges over 64 bits. Callers then use the serial kernels.
  static std::optional<RadixPartitioner> Plan(
      int radix_bits, const ColumnSet& a, const std::vector<SortKey>& a_keys,
      const ColumnSet* b = nullptr,
      const std::vector<SortKey>* b_keys = nullptr);

  int num_partitions() const { return num_partitions_; }

  // Packs every row of `rows` on `keys` (same arity/direction as planned)
  // and stable-scatters the row indices into partitions, morsel-parallel
  // (per-chunk histograms, serial prefix sums, disjoint writes). Updates
  // `stats` and the focus_sql_parallel_* obs metrics.
  RadixPartitions Scatter(const ColumnSet& rows,
                          const std::vector<SortKey>& keys,
                          MorselDispatcher* dispatcher,
                          ParallelOpStats* stats) const;

 private:
  struct Field {
    bool desc;
    int64_t min, max;
    int bits;
  };

  uint64_t PackRow(const ColumnSet& rows, const std::vector<SortKey>& keys,
                   size_t row) const;

  std::vector<Field> fields_;
  int total_bits_ = 0;
  int shift_ = 0;  // packed >> shift_ = partition id
  int num_partitions_ = 1;
};

// Heap scan with parallel tuple decode: one serial pass collects the raw
// heap records (the buffer pool is not safe for concurrent iteration),
// then morsels deserialize record ranges into per-morsel column chunks
// that concatenate in scan order — the exact BatchTableScan output.
class ParallelTableScan final : public BatchOperator {
 public:
  ParallelTableScan(const Table* table, MorselDispatcher* dispatcher,
                    std::vector<int> cols = {},
                    int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  const Table* table_;
  MorselDispatcher* dispatcher_;
  std::vector<int> cols_;
  int batch_rows_;
  Schema schema_;
  ColumnSet rows_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

// Filter/project with one morsel per input batch: the child is drained on
// the query thread (batches are shared-column handles, so staging is
// cheap), morsels evaluate independent batches into preallocated slots,
// and emission walks the slots in input order.
class ParallelFilter final : public BatchOperator {
 public:
  ParallelFilter(BatchOperatorPtr child, BatchPredicate pred,
                 MorselDispatcher* dispatcher)
      : BatchOperator("parallel_filter"),
        child_(std::move(child)),
        pred_(std::move(pred)),
        dispatcher_(dispatcher) {}

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return child_->schema(); }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr child_;
  BatchPredicate pred_;  // must be pure: called concurrently
  MorselDispatcher* dispatcher_;
  std::vector<Batch> staged_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

class ParallelProject final : public BatchOperator {
 public:
  ParallelProject(BatchOperatorPtr child, std::vector<BatchExpr> exprs,
                  MorselDispatcher* dispatcher);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr child_;
  std::vector<BatchExpr> exprs_;  // evals must be pure: called concurrently
  MorselDispatcher* dispatcher_;
  Schema schema_;
  std::vector<Batch> staged_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

// Partitioned sort: radix-scatter into key ranges, stable-sort each
// partition in parallel, concatenate — the global stable sort permutation
// of BatchSort, emitted in the same gathered batches.
class ParallelSort final : public BatchOperator {
 public:
  ParallelSort(BatchOperatorPtr child, std::vector<SortKey> keys,
               MorselDispatcher* dispatcher,
               int radix_bits = kDefaultRadixBits,
               int batch_rows = kDefaultBatchRows)
      : BatchOperator("parallel_sort"),
        child_(std::move(child)),
        keys_(std::move(keys)),
        dispatcher_(dispatcher),
        radix_bits_(radix_bits),
        batch_rows_(batch_rows) {}

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return child_->schema(); }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr child_;
  std::vector<SortKey> keys_;
  MorselDispatcher* dispatcher_;
  int radix_bits_;
  int batch_rows_;
  ColumnSet rows_;
  std::vector<int64_t> order_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

// Fused sort + merge join over *unsorted* children: both sides are
// partitioned with one shared partition function, each partition is
// sorted and merge-joined independently, and per-partition index pairs
// concatenate to exactly the output of
// BatchMergeJoin(BatchSort(left), BatchSort(right)) — equal keys never
// cross a partition boundary, and left-outer NULL padding lands at the
// same positions.
class ParallelMergeJoin final : public BatchOperator {
 public:
  ParallelMergeJoin(BatchOperatorPtr left, BatchOperatorPtr right,
                    std::vector<int> left_keys, std::vector<int> right_keys,
                    MorselDispatcher* dispatcher, bool left_outer = false,
                    int radix_bits = kDefaultRadixBits,
                    int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  Status Load();

  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  MorselDispatcher* dispatcher_;
  bool left_outer_;
  int radix_bits_;
  int batch_rows_;
  Schema schema_;
  ColumnSet lrows_, rrows_;
  std::vector<int64_t> li_, ri_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

// Morsel-parallel index-probe join (the cost model's kIndexProbe arm on
// the parallel engine): both inputs must arrive sorted ascending on their
// single join key — typically dictionary-code columns the plan sorted
// anyway. The outer side splits into morsels and every morsel probes the
// shared sorted inner independently (binary search per key run, or an
// O(1) dense run-table lookup when the inner key is a dictionary-code
// domain); morsel results concatenate in morsel order, which is exactly
// BatchProbeJoin's — and the merge join's — left-major emission at any
// thread count.
class ParallelProbeJoin final : public BatchOperator {
 public:
  ParallelProbeJoin(BatchOperatorPtr left, BatchOperatorPtr right,
                    int left_key, int right_key, MorselDispatcher* dispatcher,
                    bool left_outer = false, int64_t dense_domain = 0,
                    int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  Status Load();

  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  int left_key_;
  int right_key_;
  MorselDispatcher* dispatcher_;
  bool left_outer_;
  int64_t dense_domain_;
  int batch_rows_;
  Schema schema_;
  ColumnSet lrows_, rrows_;
  std::vector<int64_t> li_, ri_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

// Partitioned hash join (inner only): both sides radix-partition on the
// packed key word, each partition builds a word-keyed hash table over its
// right rows and probes its left rows. Output order is deterministic and
// thread-count independent — partition (key-range) major, then left
// arrival order — but differs from the merge join's sorted order; used
// when the consumer does not need sorted output. Keys must be packable;
// the first NextBatch fails with InvalidArgument otherwise.
class ParallelHashJoin final : public BatchOperator {
 public:
  ParallelHashJoin(BatchOperatorPtr left, BatchOperatorPtr right,
                   std::vector<int> left_keys, std::vector<int> right_keys,
                   MorselDispatcher* dispatcher,
                   int radix_bits = kDefaultRadixBits,
                   int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr left_;
  BatchOperatorPtr right_;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  MorselDispatcher* dispatcher_;
  int radix_bits_;
  int batch_rows_;
  Schema schema_;
  ColumnSet lrows_, rrows_;
  std::vector<int64_t> li_, ri_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

// Partitioned sort-aggregate: radix-partition, sort each partition, run
// the shared sorted-run kernel per partition, concatenate. Groups never
// span partitions, so output rows and their double-accumulation order are
// exactly BatchSortAggregate's.
class ParallelSortAggregate final : public BatchOperator {
 public:
  ParallelSortAggregate(BatchOperatorPtr child, std::vector<SortKey> sort_keys,
                        std::vector<int> group_cols,
                        std::vector<AggSpec> aggs, MorselDispatcher* dispatcher,
                        int radix_bits = kDefaultRadixBits,
                        int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  BatchOperatorPtr child_;
  std::vector<SortKey> sort_keys_;
  std::vector<int> group_cols_;
  std::vector<AggSpec> aggs_;
  MorselDispatcher* dispatcher_;
  int radix_bits_;
  int batch_rows_;
  Schema schema_;
  ColumnSet agg_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

// Exchange: runs N independent child plans concurrently (one task per
// child) and emits their results concatenated in child order — the
// deterministic gather that recombines per-plan partial results.
// Children are Opened/Closed on the query thread but drained on pool
// threads, so they must not be EXPLAIN ANALYZE-wrapped (PlanStats
// recording is single-threaded) and must not share mutable state.
class ExchangeGather final : public BatchOperator {
 public:
  ExchangeGather(std::vector<BatchOperatorPtr> children,
                 MorselDispatcher* dispatcher,
                 int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  std::vector<BatchOperatorPtr> children_;
  MorselDispatcher* dispatcher_;
  int batch_rows_;
  Schema schema_;
  ColumnSet rows_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

// Exchange: drains N children concurrently, then k-way merges their
// (already sorted on `keys`) outputs with child index as the tiebreak —
// deterministic, and equal to the serial concatenate-and-stable-sort when
// children are sorted runs split in child order.
class ExchangeMerge final : public BatchOperator {
 public:
  ExchangeMerge(std::vector<BatchOperatorPtr> children,
                std::vector<SortKey> keys, MorselDispatcher* dispatcher,
                int batch_rows = kDefaultBatchRows);

  Status Open() override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  const ParallelOpStats* parallel_stats() const override { return &stats_; }

 protected:
  Result<bool> DoNextBatch(Batch* out) override;

 private:
  std::vector<BatchOperatorPtr> children_;
  std::vector<SortKey> keys_;
  MorselDispatcher* dispatcher_;
  int batch_rows_;
  Schema schema_;
  ColumnSet rows_;
  size_t pos_ = 0;
  bool loaded_ = false;
  ParallelOpStats stats_;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_PARALLEL_H_
