#include "sql/exec/operator.h"

namespace focus::sql {

Result<std::vector<Tuple>> Collect(Operator* op, size_t reserve_hint) {
  FOCUS_RETURN_IF_ERROR(op->Open());
  std::vector<Tuple> rows;
  if (reserve_hint > 0) rows.reserve(reserve_hint);
  Tuple t;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, op->Next(&t));
    if (!more) break;
    rows.push_back(std::move(t));
  }
  op->Close();
  return rows;
}

}  // namespace focus::sql
