#include "sql/exec/operator.h"

namespace focus::sql {

Result<std::vector<Tuple>> Collect(Operator* op) {
  FOCUS_RETURN_IF_ERROR(op->Open());
  std::vector<Tuple> rows;
  Tuple t;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, op->Next(&t));
    if (!more) break;
    rows.push_back(t);
  }
  op->Close();
  return rows;
}

}  // namespace focus::sql
