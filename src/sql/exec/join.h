// Join operators: merge join (inner and left outer), hash join, and a
// nested-loop join kept as a correctness oracle for tests.
//
// Merge joins require both inputs sorted ascending on their key columns
// (wrap children in Sort if needed); this is the access pattern behind the
// paper's BulkProbe (Figure 3) and join-based distillation (Figure 4).
#ifndef FOCUS_SQL_EXEC_JOIN_H_
#define FOCUS_SQL_EXEC_JOIN_H_

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sql/exec/operator.h"

namespace focus::sql {

namespace internal_join {
// Shared merge-join machinery; emits (left, right-or-null) pairs.
int CompareKeys(const Tuple& a, const std::vector<int>& a_cols,
                const Tuple& b, const std::vector<int>& b_cols);
Tuple ConcatTuples(const Tuple& left, const Tuple& right);
Tuple ConcatWithNulls(const Tuple& left, const Schema& right_schema);
}  // namespace internal_join

class MergeJoin final : public Operator {
 public:
  // `left_outer` selects LEFT OUTER JOIN semantics (unmatched left rows are
  // emitted once, padded with NULLs).
  MergeJoin(OperatorPtr left, OperatorPtr right, std::vector<int> left_keys,
            std::vector<int> right_keys, bool left_outer = false);

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  Result<bool> PullLeft();
  Result<bool> PullRight();

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  bool left_outer_;
  Schema schema_;

  Tuple left_row_, right_row_;
  bool left_valid_ = false, right_valid_ = false;
  std::vector<Tuple> group_;     // buffered right rows sharing group key
  Tuple group_key_row_;          // representative right row for the group
  bool have_group_ = false;
  size_t group_pos_ = 0;
  bool left_matched_ = false;
};

// Builds a hash table on the left input, probes with the right input.
// Output column order is left columns then right columns.
class HashJoin final : public Operator {
 public:
  HashJoin(OperatorPtr left, OperatorPtr right, std::vector<int> left_keys,
           std::vector<int> right_keys);

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  uint64_t KeyHash(const Tuple& t, const std::vector<int>& cols) const;
  bool KeysEqual(const Tuple& l, const Tuple& r) const;

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  Schema schema_;

  std::unordered_multimap<uint64_t, Tuple> build_;
  Tuple probe_row_;
  std::vector<const Tuple*> matches_;
  size_t match_pos_ = 0;
};

// O(n*m) join with an arbitrary predicate; the test oracle.
class NestedLoopJoin final : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple& l, const Tuple& r)>;

  NestedLoopJoin(OperatorPtr left, OperatorPtr right, Predicate pred);

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  Predicate pred_;
  Schema schema_;

  std::vector<Tuple> right_rows_;
  Tuple left_row_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_JOIN_H_
