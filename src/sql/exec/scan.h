// Table access operators: sequential scan and index equality scan.
#ifndef FOCUS_SQL_EXEC_SCAN_H_
#define FOCUS_SQL_EXEC_SCAN_H_

#include <optional>
#include <vector>

#include "sql/exec/operator.h"
#include "sql/table.h"

namespace focus::sql {

// Full scan in heap order — sequential page access.
class SeqScan final : public Operator {
 public:
  explicit SeqScan(const Table* table) : table_(table) {}

  Status Open() override {
    it_.emplace(table_->Scan());
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  std::optional<Table::Iterator> it_;
};

// Equality probe: B+-tree descent plus one heap fetch per match — the
// random-access path of the paper's SingleProbe and naive distiller.
class IndexScanEq final : public Operator {
 public:
  IndexScanEq(const Table* table, int index_idx, std::vector<Value> key)
      : table_(table), index_idx_(index_idx), key_(std::move(key)) {}

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  int index_idx_;
  std::vector<Value> key_;
  std::vector<storage::Rid> rids_;
  size_t pos_ = 0;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_SCAN_H_
