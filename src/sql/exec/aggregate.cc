#include "sql/exec/aggregate.h"

#include <cassert>

namespace focus::sql {

namespace {
// Result type of an aggregate over a column of `in` type.
TypeId AggOutputType(const AggSpec& spec, const Schema& in) {
  switch (spec.kind) {
    case AggKind::kCount:
      return TypeId::kInt64;
    case AggKind::kAvg:
      return TypeId::kDouble;
    case AggKind::kSum: {
      TypeId t = in.column(spec.col).type;
      return t == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
    }
    case AggKind::kMin:
    case AggKind::kMax:
      return in.column(spec.col).type;
  }
  return TypeId::kDouble;
}
}  // namespace

bool HashAggregate::GroupLess::operator()(
    const std::vector<Value>& a, const std::vector<Value>& b) const {
  for (size_t i = 0; i < a.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return false;
}

HashAggregate::HashAggregate(OperatorPtr child, std::vector<int> group_cols,
                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)) {
  std::vector<Column> cols;
  const Schema& in = child_->schema();
  for (int g : group_cols_) cols.push_back(in.column(g));
  for (const auto& a : aggs_) cols.push_back({a.out_name,
                                              AggOutputType(a, in)});
  schema_ = Schema(std::move(cols));
}

Status HashAggregate::Open() {
  FOCUS_RETURN_IF_ERROR(child_->Open());
  groups_.clear();
  Tuple t;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, child_->Next(&t));
    if (!more) break;
    std::vector<Value> key;
    key.reserve(group_cols_.size());
    for (int g : group_cols_) key.push_back(t.Get(g));
    auto [it, inserted] = groups_.try_emplace(std::move(key));
    if (inserted) it->second.resize(aggs_.size());
    for (size_t i = 0; i < aggs_.size(); ++i) {
      AggState& st = it->second[i];
      const AggSpec& spec = aggs_[i];
      ++st.count;
      if (spec.kind == AggKind::kCount) continue;
      const Value& v = t.Get(spec.col);
      switch (spec.kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          st.sum += v.AsNumeric();
          break;
        case AggKind::kMin:
          if (!st.has_minmax || v < st.min) st.min = v;
          st.has_minmax = true;
          break;
        case AggKind::kMax:
          if (!st.has_minmax || st.max < v) st.max = v;
          st.has_minmax = true;
          break;
        case AggKind::kCount:
          break;
      }
    }
  }
  emit_it_ = groups_.begin();
  return Status::OK();
}

Result<bool> HashAggregate::Next(Tuple* out) {
  if (emit_it_ == groups_.end()) return false;
  std::vector<Value> values = emit_it_->first;
  const Schema& in = child_->schema();
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    const AggState& st = emit_it_->second[i];
    switch (spec.kind) {
      case AggKind::kCount:
        values.push_back(Value::Int64(st.count));
        break;
      case AggKind::kSum:
        if (in.column(spec.col).type == TypeId::kDouble) {
          values.push_back(Value::Double(st.sum));
        } else {
          values.push_back(Value::Int64(static_cast<int64_t>(st.sum)));
        }
        break;
      case AggKind::kAvg:
        values.push_back(
            Value::Double(st.count == 0 ? 0.0 : st.sum / st.count));
        break;
      case AggKind::kMin:
        assert(st.has_minmax);
        values.push_back(st.min);
        break;
      case AggKind::kMax:
        assert(st.has_minmax);
        values.push_back(st.max);
        break;
    }
  }
  *out = Tuple(std::move(values));
  ++emit_it_;
  return true;
}

void HashAggregate::Close() {
  groups_.clear();
  child_->Close();
}

}  // namespace focus::sql
