// External merge sort.
//
// Sorts arbitrarily large inputs with a bounded in-memory budget: rows
// accumulate up to `memory_budget_rows`, each full buffer is sorted and
// spilled as a run into a temporary heap file (through the buffer pool, so
// spill I/O is charged like any other table I/O), and Next() k-way merges
// the runs. Inputs that fit the budget never touch disk. The sort is
// stable (ties keep input order: runs are formed in input order and the
// merge breaks ties on run index).
#ifndef FOCUS_SQL_EXEC_EXTERNAL_SORT_H_
#define FOCUS_SQL_EXEC_EXTERNAL_SORT_H_

#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "sql/exec/operator.h"
#include "sql/exec/sort.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace focus::sql {

class ExternalSort final : public Operator {
 public:
  // `pool` hosts the spill runs; it must outlive the operator. The
  // temporary pages are abandoned on Close (no free-space reuse — same
  // policy as Table::Clear).
  ExternalSort(OperatorPtr child, std::vector<SortKey> keys,
               storage::BufferPool* pool, size_t memory_budget_rows = 8192);

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  void Close() override;
  const Schema& schema() const override { return child_->schema(); }

  // Number of spilled runs in the last Open (0 = fully in-memory).
  // Survives Close().
  int num_runs() const { return last_num_runs_; }

 private:
  struct RunCursor {
    storage::HeapFile::Iterator it;
    Tuple current;
    bool valid = false;
  };

  Status SpillRun(std::vector<Tuple>* rows);
  // Loads the next tuple of run `idx` into its cursor.
  Status AdvanceRun(size_t idx);

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  storage::BufferPool* pool_;
  size_t memory_budget_rows_;

  std::vector<storage::HeapFile> runs_;
  int last_num_runs_ = 0;
  std::vector<RunCursor> cursors_;
  // Rows that never spilled (the final, possibly only, run).
  std::vector<Tuple> tail_;
  size_t tail_pos_ = 0;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_EXTERNAL_SORT_H_
