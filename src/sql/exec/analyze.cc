#include "sql/exec/analyze.h"

#include <cstdio>
#include <utility>

#include "util/clock.h"
#include "util/string_util.h"

namespace focus::sql {

namespace {

std::string FormatMicros(uint64_t micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms",
                static_cast<double>(micros) / 1000.0);
  return buf;
}

}  // namespace

// Declared a friend of PlanStats under this exact name.
class AnalyzedOperator final : public Operator {
 public:
  AnalyzedOperator(PlanStats* stats, std::string label, OperatorPtr child)
      : stats_(stats),
        node_(stats->NewNode(std::move(label))),
        child_(std::move(child)) {}

  Status Open() override {
    // Link under the wrapper currently opening (parent-before-child).
    if (!linked_) {
      linked_ = true;
      if (!stats_->open_stack_.empty()) {
        node_->has_parent = true;
        stats_->open_stack_.back()->children.push_back(node_);
      }
    }
    stats_->PushOpen(node_);
    Stopwatch timer;
    Status s = child_->Open();
    node_->open_micros += static_cast<uint64_t>(timer.ElapsedMicros());
    stats_->PopOpen();
    return s;
  }

  Result<bool> Next(Tuple* out) override {
    ++node_->next_calls;
    Stopwatch timer;
    Result<bool> more = child_->Next(out);
    node_->next_micros += static_cast<uint64_t>(timer.ElapsedMicros());
    if (more.ok() && more.value()) ++node_->rows_out;
    return more;
  }

  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 private:
  PlanStats* stats_;
  PlanStats::Node* node_;
  OperatorPtr child_;
  bool linked_ = false;
};

// Batch-engine wrapper; passes nullptr as op_name so the wrapper itself
// records no obs metrics (the wrapped child still does).
class AnalyzedBatchOperator final : public BatchOperator {
 public:
  AnalyzedBatchOperator(PlanStats* stats, std::string label,
                        BatchOperatorPtr child)
      : BatchOperator(nullptr),
        stats_(stats),
        node_(stats->NewNode(std::move(label))),
        child_(std::move(child)) {
    node_->is_batch = true;
  }

  void AnnotateCost(const char* access_path, uint64_t est_rows) {
    node_->access_path = access_path;
    node_->est_rows = est_rows;
    node_->has_cost = true;
  }

  Status Open() override {
    if (!linked_) {
      linked_ = true;
      if (!stats_->open_stack_.empty()) {
        node_->has_parent = true;
        stats_->open_stack_.back()->children.push_back(node_);
      }
    }
    stats_->PushOpen(node_);
    Stopwatch timer;
    Status s = child_->Open();
    node_->open_micros += static_cast<uint64_t>(timer.ElapsedMicros());
    stats_->PopOpen();
    return s;
  }

  void Close() override { child_->Close(); }
  const Schema& schema() const override { return child_->schema(); }

 protected:
  Result<bool> DoNextBatch(Batch* out) override {
    ++node_->next_calls;
    Stopwatch timer;
    Result<bool> more = child_->NextBatch(out);
    node_->next_micros += static_cast<uint64_t>(timer.ElapsedMicros());
    if (more.ok() && more.value()) {
      ++node_->batches;
      node_->rows_out += out->num_rows();
    }
    if (const ParallelOpStats* ps = child_->parallel_stats()) {
      node_->morsels = ps->morsels;
      node_->partitions = ps->partitions;
      node_->max_partition_rows = ps->max_partition_rows;
    }
    return more;
  }

 private:
  PlanStats* stats_;
  PlanStats::Node* node_;
  BatchOperatorPtr child_;
  bool linked_ = false;
};

PlanStats::Node* PlanStats::NewNode(std::string label) {
  Node& node = nodes_.emplace_back();
  node.label = std::move(label);
  return &node;
}

void PlanStats::PushOpen(Node* node) { open_stack_.push_back(node); }

void PlanStats::PopOpen() { open_stack_.pop_back(); }

std::vector<const PlanStats::Node*> PlanStats::Roots() const {
  std::vector<const Node*> roots;
  for (const Node& node : nodes_) {
    if (!node.has_parent) roots.push_back(&node);
  }
  return roots;
}

namespace {

uint64_t ChildMicros(const PlanStats::Node& node) {
  uint64_t total = 0;
  for (const PlanStats::Node* child : node.children) {
    total += child->open_micros + child->next_micros;
  }
  return total;
}

void FormatNode(const PlanStats::Node& node, const std::string& prefix,
                bool last, bool root, std::string* out) {
  uint64_t total = node.open_micros + node.next_micros;
  uint64_t children = ChildMicros(node);
  uint64_t self = total > children ? total - children : 0;
  std::string line = root ? "" : StrCat(prefix, last ? "`- " : "|- ");
  std::string cost;
  if (node.has_cost) {
    cost = StrCat(" path=", node.access_path, " est_rows=", node.est_rows);
  }
  if (node.is_batch) {
    std::string par;
    if (node.morsels > 0) {
      par = StrCat(" morsels=", node.morsels);
      if (node.partitions > 0) {
        par += StrCat(" partitions=", node.partitions,
                      " max_part_rows=", node.max_partition_rows);
      }
    }
    *out += StrCat(line, node.label, cost, "  rows=", node.rows_out,
                   " batches=", node.batches, par,
                   " total=", FormatMicros(total),
                   " self=", FormatMicros(self), "\n");
  } else {
    *out += StrCat(line, node.label, cost, "  rows=", node.rows_out,
                   " next=", node.next_calls, " total=", FormatMicros(total),
                   " self=", FormatMicros(self), "\n");
  }
  std::string child_prefix =
      root ? "" : StrCat(prefix, last ? "   " : "|  ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    FormatNode(*node.children[i], child_prefix,
               i + 1 == node.children.size(), false, out);
  }
}

void NodeToJson(const PlanStats::Node& node, obs::JsonWriter* w) {
  uint64_t total = node.open_micros + node.next_micros;
  uint64_t children = ChildMicros(node);
  w->BeginObject()
      .Field("operator", node.label)
      .Field("rows", node.rows_out)
      .Field("next_calls", node.next_calls)
      .Field("total_micros", total)
      .Field("self_micros", total > children ? total - children : 0);
  if (node.is_batch) w->Field("batches", node.batches);
  if (node.has_cost) {
    w->Field("access_path", node.access_path)
        .Field("est_rows", node.est_rows);
  }
  if (node.morsels > 0) {
    w->Field("morsels", node.morsels)
        .Field("partitions", node.partitions)
        .Field("max_partition_rows", node.max_partition_rows);
  }
  w->Key("children").BeginArray();
  for (const PlanStats::Node* child : node.children) NodeToJson(*child, w);
  w->EndArray().EndObject();
}

}  // namespace

std::string PlanStats::Format() const {
  std::string out;
  for (const Node* root : Roots()) {
    FormatNode(*root, "", true, true, &out);
  }
  return out;
}

std::string PlanStats::ToJson() const {
  obs::JsonWriter w;
  w.BeginArray();
  for (const Node* root : Roots()) NodeToJson(*root, &w);
  w.EndArray();
  return w.TakeString();
}

OperatorPtr Analyze(PlanStats* stats, std::string label, OperatorPtr child) {
  if (stats == nullptr) return child;
  return std::make_unique<AnalyzedOperator>(stats, std::move(label),
                                            std::move(child));
}

BatchOperatorPtr AnalyzeBatch(PlanStats* stats, std::string label,
                              BatchOperatorPtr child) {
  if (stats == nullptr) return child;
  return std::make_unique<AnalyzedBatchOperator>(stats, std::move(label),
                                                 std::move(child));
}

BatchOperatorPtr AnalyzeBatchCost(PlanStats* stats, std::string label,
                                  BatchOperatorPtr child,
                                  const char* access_path,
                                  uint64_t est_rows) {
  if (stats == nullptr) return child;
  auto wrapper = std::make_unique<AnalyzedBatchOperator>(
      stats, std::move(label), std::move(child));
  wrapper->AnnotateCost(access_path, est_rows);
  return wrapper;
}

}  // namespace focus::sql
