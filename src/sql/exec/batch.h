// Columnar batches for the vectorized executor.
//
// The scalar engine moves one Tuple (a vector of 48-byte Value variants)
// per virtual call; the vectorized engine moves a Batch of ~1024 rows laid
// out as typed column vectors: int32/int64/double as flat std::vector<T>,
// strings as an offset array over a shared character arena. Columns are
// reference-counted (ColumnPtr), so pass-through operators (a projection
// that keeps a column, a filter that drops no rows, a source smaller than
// one batch) forward columns by pointer without copying a byte.
//
// NULLs exist only transiently (outer-join padding, exactly like the
// scalar engine): a column's `nulls` byte vector is empty — meaning all
// rows valid — unless some operator introduced NULLs.
#ifndef FOCUS_SQL_EXEC_BATCH_H_
#define FOCUS_SQL_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sql/exec/sort.h"
#include "sql/schema.h"
#include "sql/value.h"

namespace focus::sql {

// Rows per batch; large enough to amortize per-batch virtual dispatch,
// small enough that a working set of batches stays cache-resident.
inline constexpr int kDefaultBatchRows = 1024;

// One typed column vector. Exactly one of the payload vectors is active,
// selected by `type`; for kString, `str_offsets` holds size()+1 offsets
// into `arena` (offset[0] == 0).
struct ColumnData {
  TypeId type = TypeId::kInt32;
  std::vector<int32_t> i32;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint32_t> str_offsets;
  std::string arena;
  // Empty means all rows valid; else size() bytes, 1 = NULL.
  std::vector<uint8_t> nulls;

  explicit ColumnData(TypeId t = TypeId::kInt32);

  size_t size() const;
  void Clear();
  void Reserve(size_t n);

  bool IsNull(size_t row) const { return !nulls.empty() && nulls[row] != 0; }
  bool has_nulls() const { return !nulls.empty(); }
  std::string_view StringAt(size_t row) const {
    return std::string_view(arena).substr(
        str_offsets[row], str_offsets[row + 1] - str_offsets[row]);
  }

  // Row accessors bridging to the scalar engine's Value representation.
  Value ValueAt(size_t row) const;
  void AppendValue(const Value& v);  // type must match (NULLs allowed)
  void AppendNull();
  void AppendFrom(const ColumnData& src, size_t row);
  void AppendRange(const ColumnData& src, size_t begin, size_t end);
};

using ColumnPtr = std::shared_ptr<ColumnData>;

inline ColumnPtr NewColumn(TypeId type) {
  return std::make_shared<ColumnData>(type);
}

// out[i] = src[idx[i]]; an index of -1 produces NULL (outer-join padding).
ColumnPtr Gather(const ColumnData& src, const int64_t* idx, size_t n);
inline ColumnPtr Gather(const ColumnData& src,
                        const std::vector<int64_t>& idx) {
  return Gather(src, idx.data(), idx.size());
}

// Three-way row comparison with Value::Compare semantics (NULL sorts
// before everything; types must match).
int CompareColumnRows(const ColumnData& a, size_t ra, const ColumnData& b,
                      size_t rb);

// Lexicographic comparison across `keys` (reuses the scalar SortKey).
int CompareRowsOnKeys(const std::vector<ColumnPtr>& cols, size_t a, size_t b,
                      const std::vector<SortKey>& keys);

// A horizontal slice of a result: shared columns + implied row count.
// Operators Reset() the caller's batch and either install fresh columns or
// forward the child's ColumnPtrs.
class Batch {
 public:
  void Reset() { cols_.clear(); }

  int num_columns() const { return static_cast<int>(cols_.size()); }
  size_t num_rows() const { return cols_.empty() ? 0 : cols_[0]->size(); }

  void AddColumn(ColumnPtr col) { cols_.push_back(std::move(col)); }
  const ColumnData& col(int i) const { return *cols_[i]; }
  ColumnData* mutable_col(int i) { return cols_[i].get(); }
  const ColumnPtr& col_ptr(int i) const { return cols_[i]; }

  Value ValueAt(size_t row, int col) const {
    return cols_[col]->ValueAt(row);
  }
  // Rebuilds `out` as the scalar image of row `row`.
  void ToTuple(size_t row, Tuple* out) const;
  // Appends every column of `t` (column count must match on non-empty).
  void AppendTuple(const Schema& schema, const Tuple& t);

 private:
  std::vector<ColumnPtr> cols_;
};

// A fully materialized columnar rowset — the staging area for sort, merge
// join, and the "with ... as" temps of Figure 3. Columns are ColumnPtrs so
// a BatchSource over a small set shares them zero-copy.
class ColumnSet {
 public:
  ColumnSet() = default;
  explicit ColumnSet(const Schema& schema);
  // Adopts existing columns (shared, zero-copy). Column count must match
  // the schema and all columns must have equal lengths.
  ColumnSet(Schema schema, std::vector<ColumnPtr> cols);

  const Schema& schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(cols_.size()); }
  size_t num_rows() const { return cols_.empty() ? 0 : cols_[0]->size(); }

  const ColumnData& col(int i) const { return *cols_[i]; }
  ColumnData* mutable_col(int i) { return cols_[i].get(); }
  const ColumnPtr& col_ptr(int i) const { return cols_[i]; }

  void AppendBatch(const Batch& b);
  void AppendTuple(const Tuple& t);
  void Clear();

 private:
  Schema schema_;
  std::vector<ColumnPtr> cols_;
};

}  // namespace focus::sql

#endif  // FOCUS_SQL_EXEC_BATCH_H_
