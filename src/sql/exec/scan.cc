#include "sql/exec/scan.h"

namespace focus::sql {

Result<bool> SeqScan::Next(Tuple* out) {
  storage::Rid rid;
  if (!it_->Next(&rid, out)) {
    FOCUS_RETURN_IF_ERROR(it_->status());
    return false;
  }
  return true;
}

Status IndexScanEq::Open() {
  rids_.clear();
  pos_ = 0;
  return table_->IndexLookup(index_idx_, key_, &rids_);
}

Result<bool> IndexScanEq::Next(Tuple* out) {
  if (pos_ >= rids_.size()) return false;
  FOCUS_RETURN_IF_ERROR(table_->Get(rids_[pos_++], out));
  return true;
}

}  // namespace focus::sql
