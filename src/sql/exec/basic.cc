#include "sql/exec/basic.h"

namespace focus::sql {

Result<bool> Filter::Next(Tuple* out) {
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (predicate_(*out)) return true;
  }
}

Project::Project(OperatorPtr child, std::vector<ProjExpr> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  std::vector<Column> cols;
  cols.reserve(exprs_.size());
  for (const auto& e : exprs_) cols.push_back({e.name, e.type});
  schema_ = Schema(std::move(cols));
}

Result<bool> Project::Next(Tuple* out) {
  Tuple in;
  FOCUS_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  std::vector<Value> values;
  values.reserve(exprs_.size());
  for (const auto& e : exprs_) values.push_back(e.fn(in));
  *out = Tuple(std::move(values));
  return true;
}

OperatorPtr Project::Columns(OperatorPtr child, std::vector<int> cols) {
  std::vector<ProjExpr> exprs;
  exprs.reserve(cols.size());
  const Schema& in = child->schema();
  for (int c : cols) {
    exprs.push_back(ProjExpr{in.column(c).name, in.column(c).type,
                             [c](const Tuple& t) { return t.Get(c); }});
  }
  return std::make_unique<Project>(std::move(child), std::move(exprs));
}

Result<bool> Limit::Next(Tuple* out) {
  if (emitted_ >= limit_) return false;
  FOCUS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++emitted_;
  return true;
}

}  // namespace focus::sql
