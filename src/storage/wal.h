// Redo-only write-ahead logging for the storage layer.
//
// The paper treats Focus as "a database application": crawler, classifier
// and distiller are concurrent clients of a relational store whose substrate
// (DB2 in 1999) provided recovery for free. This file is our substrate's
// recovery: a minimal ARIES-flavoured redo log of full page images, plus a
// DiskManager decorator that gives CrawlDb atomic, durable batch commits on
// top of any raw device.
//
// Design
//   * `Wal` owns the log format: it appends `{page_id, page_image, lsn}`
//     records to a log device, group-commits them with an explicit Sync()
//     barrier, and on open parses the log back into the set of *committed*
//     page images. Records carry a checksum; a torn log tail (crash mid
//     append) fails the checksum and the uncommitted batch is discarded.
//   * `WalDiskManager` wraps a data device + a log device. Writes never
//     touch the data device directly: they land in an in-memory overlay
//     (no-steal) and are logged on Commit(). Reads are served overlay-first.
//     Checkpoint() = flush the overlay to the data device, advance the
//     manifest, truncate the log. On Open() it replays committed records
//     past the last checkpoint before serving reads.
//   * The log is itself stored through a DiskManager, so a test can wrap
//     both devices in CrashFaultDiskManager with one shared CrashPlan and
//     sweep every crash point — data writes, log writes, sync barriers —
//     of a workload deterministically (see tests/wal_recovery_test.cc).
//
// Commit metadata. Table catalogs (heap head/tail pages, B+-tree roots) live
// in memory, so a raw page store cannot be reattached after a crash. Each
// commit record therefore carries an opaque metadata blob — in practice
// `sql::Catalog::SerializeLayouts()` — restored by recovery and readable via
// `recovered_metadata()`. Checkpoints persist the same blob in the manifest
// (ping-pong slots in physical pages 0 and 1 of the data device; client
// page v maps to physical page v + 2).
//
// Crash-ordering contract (who syncs when):
//   commit     = append images + commit record, then log Sync. A commit that
//                returned OK is durable.
//   checkpoint = commit, then data pages + data Sync, then manifest + data
//                Sync, then log reset + log Sync. Every prefix of that
//                sequence recovers to a committed state.
// The buffer pool's dirty write-backs go to the overlay only, so eviction
// order never violates the log-before-data discipline.
#ifndef FOCUS_STORAGE_WAL_H_
#define FOCUS_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace focus::obs {
class EventLog;
}  // namespace focus::obs

namespace focus::storage {

// Counters for the logging layer, exported through obs as
// focus_wal_appends_total / focus_wal_syncs_total /
// focus_wal_recovery_replayed_total (and friends).
struct WalStats {
  uint64_t appends = 0;            // page-image records appended
  uint64_t syncs = 0;              // log-device sync barriers issued
  uint64_t commits = 0;            // commit records made durable
  uint64_t checkpoints = 0;        // completed checkpoints
  uint64_t log_bytes = 0;          // record bytes appended (before padding)
  uint64_t recovery_replayed = 0;  // committed page images replayed on Open
  uint64_t recovered_commits = 0;  // committed batches found in the log
  uint64_t segments_recycled = 0;  // log segments returned for reuse by
                                   // checkpoints (see Wal segment docs)
  uint64_t group_commit_flushes = 0;    // sync barriers covering >= 1 commit
  uint64_t group_commit_max_batch = 0;  // most commits one sync covered
};

// The append/parse engine for one log device. Not thread safe; callers
// (WalDiskManager) serialize access.
class Wal {
 public:
  // Committed state parsed out of a log device.
  struct Recovered {
    uint64_t epoch = 0;    // epoch of the log's records (0 if empty)
    bool empty = true;     // no valid records at all
    uint64_t commits = 0;  // committed batches (commit records seen)
    uint64_t replayed_records = 0;
    bool have_horizon = false;  // a commit/checkpoint record was found
    uint32_t num_pages = 0;     // committed page-allocation horizon
    std::string metadata;       // metadata blob of the last committed batch
    std::map<PageId, std::unique_ptr<Page>> pages;  // committed images
  };

  explicit Wal(DiskManager* log) : log_(log) {}

  // Parses the log from its first page: records are applied in order, a
  // batch becomes visible only when its commit record checks out, and the
  // first bad magic/checksum/epoch ends the scan (torn tail => the
  // in-flight batch never happened). Leaves the append tail positioned
  // after the last committed record.
  Result<Recovered> Recover();

  // Buffers a redo record for `image` (volatile until Commit).
  void Append(PageId id, const char* image);

  // Appends a commit record carrying the allocation horizon and metadata,
  // writes the buffered byte stream to the log device, and issues the
  // Sync() barrier. On OK the batch is durable.
  Status Commit(uint32_t num_pages, std::string_view metadata);

  // Group-commit building blocks (used by WalDiskManager's leader/follower
  // protocol; Commit() above is AppendCommit + one full flush).
  //
  // AppendCommit stages a commit record without flushing: several batches
  // may stage back to back and ride one sync barrier.
  void AppendCommit(uint32_t num_pages, std::string_view metadata);
  // A flush unit taken under the caller's lock. TakePending moves the
  // staged bytes out and *reserves* their log-device extent by advancing
  // the append tail, so later batches can stage (and even flush) while
  // this unit's device I/O is still in flight.
  struct PendingFlush {
    std::string bytes;
    uint64_t first_page = 0;
    uint64_t commits = 0;   // commit records inside `bytes`
    uint64_t new_tail = 0;  // page-aligned tail after this unit lands
    bool empty() const { return bytes.empty(); }
  };
  PendingFlush TakePending();
  // Writes the unit's pages (ascending, commit record last) and issues the
  // sync barrier. Touches only the log device — safe to call without the
  // owner's lock as long as only one flush is in flight at a time.
  Status WriteFlush(const PendingFlush& flush);
  // Folds a completed WriteFlush back into the stats (caller's lock held).
  void FinishFlush(const PendingFlush& flush);

  // Starts epoch `new_epoch`: rewrites the log from page 0 with a single
  // checkpoint record and syncs. Pages beyond the new tail keep stale bytes;
  // their old epoch makes Recover() ignore them. The caller must have made
  // the data device consistent first.
  Status Reset(uint64_t new_epoch, uint32_t num_pages,
               std::string_view metadata);

  uint64_t epoch() const { return epoch_; }
  const WalStats& stats() const { return stats_; }

  // The log device is carved into fixed-size logical segments of this many
  // pages. Segments have no on-disk framing — they are an accounting unit:
  // `segments_in_use` is how many the durable tail currently spans, and a
  // Reset (checkpoint) counts every in-use segment as recycled, since its
  // pages become reusable by the next epoch (stale-epoch records are
  // ignored by recovery, so no erase pass is needed).
  void set_segment_pages(uint32_t pages) {
    if (pages > 0) segment_pages_ = pages;
  }
  uint32_t segment_pages() const { return segment_pages_; }

  // Point-in-time occupancy of the log (ROADMAP's segment recycling:
  // callers can observe that a checkpoint really returns the tail to the
  // start of the device, auto-checkpoint policies can bound
  // segments_in_use, and regression tests can pin log growth across
  // checkpoint cycles).
  struct SegmentStats {
    uint64_t epoch = 0;          // current log epoch
    uint64_t tail_bytes = 0;     // durable append tail (page-aligned)
    uint64_t pending_bytes = 0;  // buffered, not yet committed
    uint32_t device_pages = 0;   // pages allocated on the log device
    uint32_t segment_pages = 0;  // logical segment size
    uint32_t segments_in_use = 0;     // segments the tail spans
    uint64_t segments_recycled = 0;   // cumulative, via checkpoints
  };
  SegmentStats segment_stats() const {
    SegmentStats s;
    s.epoch = epoch_;
    s.tail_bytes = tail_;
    s.pending_bytes = pending_.size();
    s.device_pages = log_->NumPages();
    s.segment_pages = segment_pages_;
    s.segments_in_use = SegmentsSpanned(tail_);
    s.segments_recycled = stats_.segments_recycled;
    return s;
  }

 private:
  uint32_t SegmentsSpanned(uint64_t bytes) const {
    uint64_t seg_bytes = static_cast<uint64_t>(segment_pages_) * kPageSize;
    return static_cast<uint32_t>((bytes + seg_bytes - 1) / seg_bytes);
  }

  DiskManager* log_;
  uint64_t epoch_ = 0;
  uint64_t next_lsn_ = 0;
  // Byte offset where the next record lands; page-aligned after every
  // flush so a new batch never rewrites synced bytes (a torn rewrite of a
  // shared tail page could otherwise destroy a *committed* record).
  uint64_t tail_ = 0;
  std::string pending_;
  uint64_t staged_commits_ = 0;  // commit records in pending_
  uint32_t segment_pages_ = 256;  // 1 MiB logical segments
  WalStats stats_;
};

// DiskManager decorator: WAL + no-steal overlay + manifest, providing
// atomic durable commits over a (data, log) device pair.
class WalDiskManager final : public DiskManager {
 public:
  struct Options {
    // When Open() replayed anything (or found a stale log), immediately
    // checkpoint the recovered state — the ARIES end-of-recovery
    // checkpoint. Gives recovery itself crash points (double-crash tests)
    // and bounds log growth across repeated crashes.
    bool checkpoint_after_recovery = false;
    // Group commit: a committer that becomes flush leader waits this long
    // (with the store lock released) for concurrent committers to stage
    // their batches before issuing the shared sync barrier. 0 = sync
    // immediately; concurrent commits still coalesce opportunistically
    // whenever they stage while another flush's device I/O is in flight.
    double group_commit_wait_us = 0;
    // Logical log-segment size in pages (accounting unit for recycling).
    uint32_t segment_pages = 256;
    // Log-segment recycling: when > 0, a commit that leaves the log
    // spanning at least this many segments triggers an automatic
    // checkpoint, which folds the overlay into the data device and
    // recycles every in-use segment. Steady-state log disk usage is then
    // bounded by recycle_after_segments * segment_pages + one commit's
    // worth of pages, no matter how long the workload runs. 0 = off
    // (callers checkpoint explicitly).
    uint32_t recycle_after_segments = 0;
  };

  // Attaches to `data` + `log` (borrowed; must outlive the manager) and
  // runs recovery: reads the manifest, replays committed log records past
  // the last checkpoint, and reconstructs the committed overlay. Fresh
  // (empty) devices come up as an empty store at epoch 0.
  static Result<std::unique_ptr<WalDiskManager>> Open(
      DiskManager* data, DiskManager* log, Options options);
  static Result<std::unique_ptr<WalDiskManager>> Open(DiskManager* data,
                                                      DiskManager* log) {
    return Open(data, log, Options{});
  }
  ~WalDiskManager() override;

  WalDiskManager(const WalDiskManager&) = delete;
  WalDiskManager& operator=(const WalDiskManager&) = delete;

  // DiskManager interface, in *client* page ids (0-based; physical data
  // page = client page + 2, past the manifest slots).
  Status ReadPage(PageId id, char* out) override;
  // Serves the overlay page by page but forwards each contiguous
  // non-overlay run to the data device as one batched read, so pool
  // readahead keeps its single-seek cost through the WAL decorator.
  Status ReadPages(PageId first, uint32_t n, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Result<PageId> AllocatePage() override;
  uint32_t NumPages() const override;
  // Durability barrier == Commit with the previous metadata blob.
  Status Sync() override;

  // Commit: logs every page written since the last commit plus a commit
  // record carrying `metadata`, then syncs the log. Atomic: after a crash
  // the store recovers to exactly a commit boundary.
  //
  // Concurrent commits group-commit: batches stage under the lock, and one
  // leader's sync barrier covers every batch staged before it (followers
  // block — bounded by the leader's I/O — and return once their batch is
  // durable). Options::group_commit_wait_us lets the leader linger for
  // late joiners.
  Status Commit(std::string_view metadata);

  // Applies the committed overlay to the data device and truncates the
  // log. `metadata` must fit in a manifest page (~4 KiB); keep it a
  // compact catalog blob.
  Status Checkpoint(std::string_view metadata);

  // Metadata blob restored by recovery ("" for a fresh store).
  const std::string& recovered_metadata() const { return recovered_metadata_; }
  uint64_t epoch() const { return epoch_; }
  WalStats wal_stats() const;
  Wal::SegmentStats wal_segment_stats() const;

  // Exports WAL counters through the metrics registry, labeled
  // {wal=<name>}. Follows the BufferPool::BindMetrics collector pattern.
  void BindMetrics(obs::MetricsRegistry* registry, std::string name);

  // Provenance hook: commits and checkpoints record kWalCommit /
  // kWalCheckpoint events (the durable batch boundaries that order the
  // crawl's event history). Binding after a recovery that replayed
  // records emits one retrospective kWalReplay event, since recovery runs
  // inside Open() before any log can be attached.
  void BindEventLog(obs::EventLog* log);

 private:
  WalDiskManager(DiskManager* data, DiskManager* log, Options options)
      : options_(options), data_(data), log_(log), wal_(log) {
    wal_.set_segment_pages(options.segment_pages);
  }

  Status RecoverLocked();
  // Stages the current dirty set + a commit record, then runs the
  // leader/follower group-flush protocol (may release and reacquire
  // `lock` around the device I/O).
  Status CommitLocked(std::string_view metadata,
                      std::unique_lock<std::mutex>& lock);
  Status CheckpointLocked(std::string_view metadata,
                          std::unique_lock<std::mutex>& lock);
  // Auto-checkpoints when the log spans recycle_after_segments segments.
  Status MaybeRecycleLocked(std::unique_lock<std::mutex>& lock);
  Status WriteManifestLocked(uint64_t epoch, std::string_view metadata);

  const Options options_;
  DiskManager* data_;
  DiskManager* log_;

  mutable std::mutex mutex_;
  Wal wal_;
  uint64_t epoch_ = 0;
  uint32_t num_pages_ = 0;  // client-page allocation horizon
  std::string metadata_;    // blob as of the last commit
  std::string recovered_metadata_;
  // No-steal overlay: every page written since the last checkpoint.
  // Ordered so commit/checkpoint scans are deterministic (stable log
  // content and crash-op numbering across runs).
  std::map<PageId, std::unique_ptr<Page>> overlay_;
  std::set<PageId> dirty_;  // written since the last commit
  uint64_t replayed_ = 0;
  uint64_t recovered_commits_ = 0;

  // Group-commit protocol state (all under mutex_). A committer stages its
  // batch, takes a sequence number, and either becomes the flush leader
  // (when no flush is in flight) or waits on group_cv_ for a leader whose
  // sync barrier covers its sequence number.
  std::condition_variable group_cv_;
  bool flush_in_progress_ = false;
  uint64_t staged_seq_ = 0;  // seq of the newest staged commit
  uint64_t synced_seq_ = 0;  // commits with seq <= this are durable
  // Sticky failure: once a group flush fails, the log tail state is
  // unknown, so every later commit fails with the same status until the
  // store is reopened (recovery re-establishes a consistent tail).
  Status log_failed_;

  obs::MetricsRegistry* metrics_registry_ = nullptr;
  uint64_t collector_id_ = 0;
  obs::Histogram* group_hist_ = nullptr;  // group-commit batch sizes
  obs::EventLog* event_log_ = nullptr;
};

}  // namespace focus::storage

#endif  // FOCUS_STORAGE_WAL_H_
