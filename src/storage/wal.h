// Redo-only write-ahead logging for the storage layer.
//
// The paper treats Focus as "a database application": crawler, classifier
// and distiller are concurrent clients of a relational store whose substrate
// (DB2 in 1999) provided recovery for free. This file is our substrate's
// recovery: a minimal ARIES-flavoured redo log of full page images, plus a
// DiskManager decorator that gives CrawlDb atomic, durable batch commits on
// top of any raw device.
//
// Design
//   * `Wal` owns the log format: it appends `{page_id, page_image, lsn}`
//     records to a log device, group-commits them with an explicit Sync()
//     barrier, and on open parses the log back into the set of *committed*
//     page images. Records carry a checksum; a torn log tail (crash mid
//     append) fails the checksum and the uncommitted batch is discarded.
//   * `WalDiskManager` wraps a data device + a log device. Writes never
//     touch the data device directly: they land in an in-memory overlay
//     (no-steal) and are logged on Commit(). Reads are served overlay-first.
//     Checkpoint() = flush the overlay to the data device, advance the
//     manifest, truncate the log. On Open() it replays committed records
//     past the last checkpoint before serving reads.
//   * The log is itself stored through a DiskManager, so a test can wrap
//     both devices in CrashFaultDiskManager with one shared CrashPlan and
//     sweep every crash point — data writes, log writes, sync barriers —
//     of a workload deterministically (see tests/wal_recovery_test.cc).
//
// Commit metadata. Table catalogs (heap head/tail pages, B+-tree roots) live
// in memory, so a raw page store cannot be reattached after a crash. Each
// commit record therefore carries an opaque metadata blob — in practice
// `sql::Catalog::SerializeLayouts()` — restored by recovery and readable via
// `recovered_metadata()`. Checkpoints persist the same blob in the manifest
// (ping-pong slots in physical pages 0 and 1 of the data device; client
// page v maps to physical page v + 2).
//
// Crash-ordering contract (who syncs when):
//   commit     = append images + commit record, then log Sync. A commit that
//                returned OK is durable.
//   checkpoint = commit, then data pages + data Sync, then manifest + data
//                Sync, then log reset + log Sync. Every prefix of that
//                sequence recovers to a committed state.
// The buffer pool's dirty write-backs go to the overlay only, so eviction
// order never violates the log-before-data discipline.
#ifndef FOCUS_STORAGE_WAL_H_
#define FOCUS_STORAGE_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace focus::obs {
class EventLog;
}  // namespace focus::obs

namespace focus::storage {

// Counters for the logging layer, exported through obs as
// focus_wal_appends_total / focus_wal_syncs_total /
// focus_wal_recovery_replayed_total (and friends).
struct WalStats {
  uint64_t appends = 0;            // page-image records appended
  uint64_t syncs = 0;              // log-device sync barriers issued
  uint64_t commits = 0;            // commit records made durable
  uint64_t checkpoints = 0;        // completed checkpoints
  uint64_t log_bytes = 0;          // record bytes appended (before padding)
  uint64_t recovery_replayed = 0;  // committed page images replayed on Open
  uint64_t recovered_commits = 0;  // committed batches found in the log
};

// The append/parse engine for one log device. Not thread safe; callers
// (WalDiskManager) serialize access.
class Wal {
 public:
  // Committed state parsed out of a log device.
  struct Recovered {
    uint64_t epoch = 0;    // epoch of the log's records (0 if empty)
    bool empty = true;     // no valid records at all
    uint64_t commits = 0;  // committed batches (commit records seen)
    uint64_t replayed_records = 0;
    bool have_horizon = false;  // a commit/checkpoint record was found
    uint32_t num_pages = 0;     // committed page-allocation horizon
    std::string metadata;       // metadata blob of the last committed batch
    std::map<PageId, std::unique_ptr<Page>> pages;  // committed images
  };

  explicit Wal(DiskManager* log) : log_(log) {}

  // Parses the log from its first page: records are applied in order, a
  // batch becomes visible only when its commit record checks out, and the
  // first bad magic/checksum/epoch ends the scan (torn tail => the
  // in-flight batch never happened). Leaves the append tail positioned
  // after the last committed record.
  Result<Recovered> Recover();

  // Buffers a redo record for `image` (volatile until Commit).
  void Append(PageId id, const char* image);

  // Appends a commit record carrying the allocation horizon and metadata,
  // writes the buffered byte stream to the log device, and issues the
  // Sync() barrier. On OK the batch is durable.
  Status Commit(uint32_t num_pages, std::string_view metadata);

  // Starts epoch `new_epoch`: rewrites the log from page 0 with a single
  // checkpoint record and syncs. Pages beyond the new tail keep stale bytes;
  // their old epoch makes Recover() ignore them. The caller must have made
  // the data device consistent first.
  Status Reset(uint64_t new_epoch, uint32_t num_pages,
               std::string_view metadata);

  uint64_t epoch() const { return epoch_; }
  const WalStats& stats() const { return stats_; }

  // Point-in-time occupancy of the current log segment (ROADMAP's
  // segment-recycling groundwork: callers can now *observe* that a
  // checkpoint really returns the tail to the start of the device, and
  // regression tests can pin log growth across checkpoint cycles).
  struct SegmentStats {
    uint64_t epoch = 0;          // current log epoch
    uint64_t tail_bytes = 0;     // durable append tail (page-aligned)
    uint64_t pending_bytes = 0;  // buffered, not yet committed
    uint32_t device_pages = 0;   // pages allocated on the log device
  };
  SegmentStats segment_stats() const {
    SegmentStats s;
    s.epoch = epoch_;
    s.tail_bytes = tail_;
    s.pending_bytes = pending_.size();
    s.device_pages = log_->NumPages();
    return s;
  }

 private:
  Status Flush();  // write pending_ out as log pages + sync

  DiskManager* log_;
  uint64_t epoch_ = 0;
  uint64_t next_lsn_ = 0;
  // Byte offset where the next record lands; page-aligned after every
  // flush so a new batch never rewrites synced bytes (a torn rewrite of a
  // shared tail page could otherwise destroy a *committed* record).
  uint64_t tail_ = 0;
  std::string pending_;
  WalStats stats_;
};

// DiskManager decorator: WAL + no-steal overlay + manifest, providing
// atomic durable commits over a (data, log) device pair.
class WalDiskManager final : public DiskManager {
 public:
  struct Options {
    // When Open() replayed anything (or found a stale log), immediately
    // checkpoint the recovered state — the ARIES end-of-recovery
    // checkpoint. Gives recovery itself crash points (double-crash tests)
    // and bounds log growth across repeated crashes.
    bool checkpoint_after_recovery = false;
  };

  // Attaches to `data` + `log` (borrowed; must outlive the manager) and
  // runs recovery: reads the manifest, replays committed log records past
  // the last checkpoint, and reconstructs the committed overlay. Fresh
  // (empty) devices come up as an empty store at epoch 0.
  static Result<std::unique_ptr<WalDiskManager>> Open(
      DiskManager* data, DiskManager* log, Options options);
  static Result<std::unique_ptr<WalDiskManager>> Open(DiskManager* data,
                                                      DiskManager* log) {
    return Open(data, log, Options{});
  }
  ~WalDiskManager() override;

  WalDiskManager(const WalDiskManager&) = delete;
  WalDiskManager& operator=(const WalDiskManager&) = delete;

  // DiskManager interface, in *client* page ids (0-based; physical data
  // page = client page + 2, past the manifest slots).
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Result<PageId> AllocatePage() override;
  uint32_t NumPages() const override;
  // Durability barrier == Commit with the previous metadata blob.
  Status Sync() override;

  // Group commit: logs every page written since the last commit plus a
  // commit record carrying `metadata`, then syncs the log. Atomic: after a
  // crash the store recovers to exactly a commit boundary.
  Status Commit(std::string_view metadata);

  // Applies the committed overlay to the data device and truncates the
  // log. `metadata` must fit in a manifest page (~4 KiB); keep it a
  // compact catalog blob.
  Status Checkpoint(std::string_view metadata);

  // Metadata blob restored by recovery ("" for a fresh store).
  const std::string& recovered_metadata() const { return recovered_metadata_; }
  uint64_t epoch() const { return epoch_; }
  WalStats wal_stats() const;
  Wal::SegmentStats wal_segment_stats() const;

  // Exports WAL counters through the metrics registry, labeled
  // {wal=<name>}. Follows the BufferPool::BindMetrics collector pattern.
  void BindMetrics(obs::MetricsRegistry* registry, std::string name);

  // Provenance hook: commits and checkpoints record kWalCommit /
  // kWalCheckpoint events (the durable batch boundaries that order the
  // crawl's event history). Binding after a recovery that replayed
  // records emits one retrospective kWalReplay event, since recovery runs
  // inside Open() before any log can be attached.
  void BindEventLog(obs::EventLog* log);

 private:
  WalDiskManager(DiskManager* data, DiskManager* log, Options options)
      : options_(options), data_(data), log_(log), wal_(log) {}

  Status RecoverLocked();
  Status CommitLocked(std::string_view metadata);
  Status CheckpointLocked(std::string_view metadata);
  Status WriteManifestLocked(uint64_t epoch, std::string_view metadata);

  const Options options_;
  DiskManager* data_;
  DiskManager* log_;

  mutable std::mutex mutex_;
  Wal wal_;
  uint64_t epoch_ = 0;
  uint32_t num_pages_ = 0;  // client-page allocation horizon
  std::string metadata_;    // blob as of the last commit
  std::string recovered_metadata_;
  // No-steal overlay: every page written since the last checkpoint.
  // Ordered so commit/checkpoint scans are deterministic (stable log
  // content and crash-op numbering across runs).
  std::map<PageId, std::unique_ptr<Page>> overlay_;
  std::set<PageId> dirty_;  // written since the last commit
  uint64_t replayed_ = 0;
  uint64_t recovered_commits_ = 0;

  obs::MetricsRegistry* metrics_registry_ = nullptr;
  uint64_t collector_id_ = 0;
  obs::EventLog* event_log_ = nullptr;
};

}  // namespace focus::storage

#endif  // FOCUS_STORAGE_WAL_H_
