// Disk managers: the page-granular persistence layer below the buffer pool.
//
// Two implementations: a file-backed manager (real I/O, used by benchmarks)
// and an in-memory manager (fast, used by most tests). Both count reads and
// writes so experiments can report I/O volume independent of wall time.
#ifndef FOCUS_STORAGE_DISK_MANAGER_H_
#define FOCUS_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace focus::storage {

class DiskManager {
 public:
  struct Stats {
    uint64_t reads = 0;        // pages read (batched reads count each page)
    uint64_t writes = 0;
    uint64_t allocations = 0;
    uint64_t syncs = 0;
    uint64_t batch_reads = 0;  // ReadPages vector ops issued
  };

  virtual ~DiskManager() = default;

  // Reads page `id` into `out` (kPageSize bytes).
  virtual Status ReadPage(PageId id, char* out) = 0;
  // Reads `n` consecutive pages [first, first + n) into `out`
  // (n * kPageSize bytes) as one vector operation. On devices with a
  // positioning cost this is one seek plus n transfers instead of n seeks;
  // the base implementation degrades to a page-at-a-time loop.
  virtual Status ReadPages(PageId first, uint32_t n, char* out) {
    for (uint32_t i = 0; i < n; ++i) {
      FOCUS_RETURN_IF_ERROR(
          ReadPage(first + i, out + static_cast<size_t>(i) * kPageSize));
    }
    return Status::OK();
  }
  // Writes kPageSize bytes from `in` to page `id`.
  virtual Status WritePage(PageId id, const char* in) = 0;
  // Allocates a fresh zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;
  // Number of pages allocated so far.
  virtual uint32_t NumPages() const = 0;
  // Durability barrier: all WritePage/AllocatePage calls that returned
  // before Sync() are guaranteed to survive a crash once Sync() returns.
  // Writes that have not been synced may be lost — or torn — by a crash.
  // The WAL layer relies on this ordering contract; see wal.h.
  virtual Status Sync() {
    ++stats_.syncs;
    return Status::OK();
  }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 protected:
  Stats stats_;
};

// Holds all pages in memory. Deterministic and fast; still exercises the
// buffer pool's hit/miss accounting, which is what the experiments measure.
//
// Optional simulated latencies (busy-wait per I/O) let benchmarks model a
// disk-bound regime: the paper's 1999 experiments paid a mechanical seek
// on every buffer miss, which dwarfed CPU — without this, access-path
// comparisons degenerate into executor-CPU comparisons.
class MemDiskManager final : public DiskManager {
 public:
  struct Options {
    double read_latency_us = 0;   // positioning cost (seek) per read op
    double write_latency_us = 0;
    // Per-page streaming cost once positioned. A ReadPages(first, n) costs
    // read_latency_us + (n - 1) * transfer_latency_us: one seek, then the
    // head stays on track. Single-page reads pay the seek alone, matching
    // the pre-batching model (transfer is folded into the seek figure).
    double transfer_latency_us = 0;
  };

  MemDiskManager() = default;
  explicit MemDiskManager(Options options) : options_(options) {}

  Status ReadPage(PageId id, char* out) override;
  Status ReadPages(PageId first, uint32_t n, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Result<PageId> AllocatePage() override;
  uint32_t NumPages() const override {
    return static_cast<uint32_t>(pages_.size());
  }

 private:
  Options options_;
  std::vector<std::unique_ptr<Page>> pages_;
};

// Pages live in a single file at `path`.
//
// This layer provides page storage plus a durability barrier (`Sync`, backed
// by fdatasync); it does NOT provide crash recovery by itself. A crash
// between WritePage and Sync may leave the page old, new, or torn (a prefix
// of the new bytes). Crash consistency is layered on top by WalDiskManager
// (wal.h), which routes writes through a redo log and replays committed
// records on reopen. Open with `Options{.truncate = false}` to attach to an
// existing file for recovery; the default truncating mode starts fresh.
class FileDiskManager final : public DiskManager {
 public:
  struct Options {
    // When false, an existing file is attached as-is and NumPages() is
    // derived from its size (a torn trailing fragment is ignored).
    bool truncate = true;
  };

  // Factory; fails if the file cannot be opened for read/write.
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path, Options options);
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path) {
    return Open(path, Options{});
  }
  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  Status ReadPage(PageId id, char* out) override;
  Status ReadPages(PageId first, uint32_t n, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Result<PageId> AllocatePage() override;
  uint32_t NumPages() const override { return num_pages_; }
  Status Sync() override;

 private:
  FileDiskManager(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
  uint32_t num_pages_ = 0;
};

}  // namespace focus::storage

#endif  // FOCUS_STORAGE_DISK_MANAGER_H_
