// Test-only crash ("power loss") injection for disk managers.
//
// CrashFaultDiskManager decorates any DiskManager, counts mutating
// operations (WritePage / AllocatePage / Sync) against a shared CrashPlan,
// and at a configurable operation index simulates losing power: the
// in-flight write is dropped — or, to model a torn page, only a prefix of
// its bytes reaches the inner device — and every subsequent operation
// (reads included) fails with an IOError carrying kCrashMessage.
//
// Several decorators may share one CrashPlan so a single global operation
// counter sweeps every crash point of a workload that spans multiple
// devices (e.g. a data file and its write-ahead log). The inner managers
// survive the "crash" untouched past the injected point, exactly like disk
// platters survive a power cut, so a test can reopen them and exercise
// recovery deterministically.
#ifndef FOCUS_STORAGE_CRASH_FAULT_DISK_H_
#define FOCUS_STORAGE_CRASH_FAULT_DISK_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

#include "storage/disk_manager.h"

namespace focus::storage {

// The error message every operation returns after the simulated power loss.
// Tests match on this to tell an injected crash from a genuine I/O failure.
inline constexpr char kCrashMessage[] = "simulated power loss";

// Shared crash schedule and operation counter. One plan may back any number
// of CrashFaultDiskManager instances; `op_count` then numbers the mutating
// operations of all of them in program order.
struct CrashPlan {
  // Mutating-op index at which power is lost. The op with this index does
  // NOT take effect (except for an optional torn prefix of a WritePage).
  // Defaults to "never": with no crash scheduled the plan only counts ops,
  // which is how tests size their sweep range.
  uint64_t crash_at_op = std::numeric_limits<uint64_t>::max();
  // If the crashing op is a WritePage, persist this many leading bytes of
  // the in-flight image to the inner device first (a torn page). 0 drops
  // the write entirely; values >= kPageSize persist it fully.
  uint32_t torn_bytes = 0;

  std::atomic<uint64_t> op_count{0};
  std::atomic<bool> crashed{false};

  void Reset(uint64_t crash_at, uint32_t torn = 0) {
    crash_at_op = crash_at;
    torn_bytes = torn;
    op_count.store(0);
    crashed.store(false);
  }
};

class CrashFaultDiskManager final : public DiskManager {
 public:
  // Neither pointer is owned; both must outlive the decorator.
  CrashFaultDiskManager(DiskManager* inner, CrashPlan* plan)
      : inner_(inner), plan_(plan) {}

  Status ReadPage(PageId id, char* out) override;
  Status ReadPages(PageId first, uint32_t n, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  Result<PageId> AllocatePage() override;
  uint32_t NumPages() const override { return inner_->NumPages(); }
  Status Sync() override;

 private:
  // Claims the next op index; returns true if that op is the crash point.
  bool NextOpCrashes();
  Status Poisoned() const;

  DiskManager* inner_;
  CrashPlan* plan_;
};

}  // namespace focus::storage

#endif  // FOCUS_STORAGE_CRASH_FAULT_DISK_H_
