// Heap file: unordered record storage over slotted pages.
//
// Records are addressed by RID (page id + slot). Inserts append to the last
// page, allocating a new page when full; scans walk the page chain in
// allocation order, which makes a full-table scan sequential on disk — the
// access pattern the paper's bulk (sort-merge) plans rely on.
#ifndef FOCUS_STORAGE_HEAP_FILE_H_
#define FOCUS_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/status.h"

namespace focus::storage {

// Record id: packs (page_id, slot).
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static Rid Unpack(uint64_t packed) {
    Rid r;
    r.page_id = static_cast<PageId>(packed >> 16);
    r.slot = static_cast<uint16_t>(packed & 0xFFFF);
    return r;
  }
  bool operator==(const Rid& other) const = default;
};

class HeapFile {
 public:
  // Creates an empty heap file, allocating its first page.
  static Result<HeapFile> Create(BufferPool* pool);

  // Reattaches to an existing heap file from its persisted layout (first /
  // last page of the chain plus the live-record count). Used by crash
  // recovery: the page chain itself lives in the pages, but the chain head
  // and tail are in-memory state that must be restored from the catalog
  // metadata a WAL commit carried (see wal.h).
  static HeapFile Attach(BufferPool* pool, PageId first_page_id,
                         PageId last_page_id, uint64_t num_records);

  // Inserts a record; fails if the record cannot fit in a fresh page.
  Result<Rid> Insert(std::string_view record);

  // Reads the record at `rid` into `out`.
  Status Get(const Rid& rid, std::string* out) const;

  // Overwrites the record at `rid` in place. The new record must have
  // exactly the original length (all mutated focus rows are fixed-width).
  Status Update(const Rid& rid, std::string_view record);

  // Tombstones the record at `rid`. Space within the page is not compacted.
  Status Delete(const Rid& rid);

  uint64_t num_records() const { return num_records_; }
  PageId first_page_id() const { return first_page_id_; }
  PageId last_page_id() const { return last_page_id_; }

  // Forward scan over live records in page order.
  class Iterator {
   public:
    // Advances to the next live record. Returns false at end-of-file or on
    // error (check status()).
    bool Next(Rid* rid, std::string* record);
    const Status& status() const { return status_; }

   private:
    friend class HeapFile;
    Iterator(const HeapFile* file, PageId page_id)
        : file_(file), page_id_(page_id) {}
    const HeapFile* file_;
    PageId page_id_;
    uint16_t slot_ = 0;
    Status status_;
  };

  Iterator Scan() const { return Iterator(this, first_page_id_); }

 private:
  explicit HeapFile(BufferPool* pool) : pool_(pool) {}

  BufferPool* pool_;
  PageId first_page_id_ = kInvalidPageId;
  PageId last_page_id_ = kInvalidPageId;
  uint64_t num_records_ = 0;
};

}  // namespace focus::storage

#endif  // FOCUS_STORAGE_HEAP_FILE_H_
