// B+-tree index over (uint64 key, uint64 value) entries.
//
// This is the probe structure behind the paper's BLOB / STAT index lookups
// and the HUBS/AUTH score lookups of the naive distiller. Duplicate keys are
// supported by ordering entries on the composite (key, value); separators in
// internal nodes are composite too, so routing and range scans are exact.
//
// Deletion removes entries without rebalancing (nodes may become underfull).
// That is sufficient for this workload — tables are bulk-built and mutated
// in place — and keeps invariants simple; the ordering invariant is
// validated in tests via CheckInvariants().
#ifndef FOCUS_STORAGE_BPLUS_TREE_H_
#define FOCUS_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/status.h"

namespace focus::storage {

class BPlusTree {
 public:
  // Creates an empty tree whose nodes are allocated from `pool`.
  static Result<BPlusTree> Create(BufferPool* pool);

  // Reattaches to an existing tree from its persisted layout (root page,
  // height, entry count). Node pages are self-describing; only this
  // in-memory header state needs the catalog metadata (see wal.h).
  static BPlusTree Attach(BufferPool* pool, PageId root, int height,
                          uint64_t num_entries);

  // Inserts (key, value). Duplicate (key, value) pairs are allowed and
  // stored multiple times.
  Status Insert(uint64_t key, uint64_t value);

  // Removes one occurrence of (key, value). NotFound if absent.
  Status Remove(uint64_t key, uint64_t value);

  // Appends every value stored under `key` to `out`.
  Status GetAll(uint64_t key, std::vector<uint64_t>* out) const;

  // Forward iterator over entries with composite >= (key, value), in
  // (key, value) order across the leaf chain. The tree must not be mutated
  // while an iterator is live.
  class Iterator {
   public:
    // Produces the next entry; false at end or on error (check status()).
    bool Next(uint64_t* key, uint64_t* value);
    const Status& status() const { return status_; }

   private:
    friend class BPlusTree;
    Iterator(const BPlusTree* tree, PageId leaf, uint16_t index)
        : tree_(tree), leaf_(leaf), index_(index) {}
    const BPlusTree* tree_;
    PageId leaf_;
    uint16_t index_;
    Status status_;
  };

  // Iterator positioned at the first entry >= (key, 0).
  Result<Iterator> Seek(uint64_t key) const { return SeekPair(key, 0); }
  // Iterator positioned at the first entry >= (key, value).
  Result<Iterator> SeekPair(uint64_t key, uint64_t value) const;
  // Iterator over the whole tree.
  Result<Iterator> Begin() const { return SeekPair(0, 0); }

  uint64_t num_entries() const { return num_entries_; }
  int height() const { return height_; }
  PageId root_page_id() const { return root_; }

  // Verifies ordering and structural invariants; used by tests.
  Status CheckInvariants() const;

 private:
  explicit BPlusTree(BufferPool* pool) : pool_(pool) {}

  struct Descent {
    PageId page_id;
    // Index of the child pointer taken within the internal node.
    uint16_t child_index;
  };

  // Walks from the root to the leaf that should contain (key, value),
  // recording internal nodes on `path` (may be null).
  Result<PageId> FindLeaf(uint64_t key, uint64_t value,
                          std::vector<Descent>* path) const;

  Status SplitLeaf(PageId leaf_id, std::vector<Descent>* path);
  Status InsertIntoParent(std::vector<Descent>* path, uint64_t sep_key,
                          uint64_t sep_value, PageId right_child);

  Status CheckNode(PageId page_id, int depth, uint64_t lo_key, uint64_t lo_val,
                   bool has_lo, uint64_t hi_key, uint64_t hi_val, bool has_hi,
                   int* leaf_depth) const;

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  int height_ = 1;
};

}  // namespace focus::storage

#endif  // FOCUS_STORAGE_BPLUS_TREE_H_
