#include "storage/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/event_log.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace focus::storage {

namespace {

// Log record wire format (host-endian; log and data files are per-machine):
//   u32 magic | u8 type | u64 epoch | u64 lsn | u32 payload_len
//   | payload | u64 checksum
// The checksum covers [type .. payload end], so a torn tail page fails
// verification and ends recovery at the previous committed record.
constexpr uint32_t kRecordMagic = 0x4C415746;  // "FWAL"
constexpr uint8_t kRecPageImage = 1;
constexpr uint8_t kRecCommit = 2;
constexpr uint8_t kRecCheckpoint = 3;
constexpr size_t kRecHeader = 4 + 1 + 8 + 8 + 4;
constexpr size_t kRecTrailer = 8;
// Commit metadata blobs are small catalog layouts; anything bigger than
// this is corruption, not data.
constexpr uint32_t kMaxMetadata = 1u << 20;

// Manifest page format (physical pages 0 and 1 of the data device):
//   u32 magic | u64 epoch | u32 num_pages | u32 metadata_len
//   | metadata | u64 checksum
constexpr uint32_t kManifestMagic = 0x4E414D46;  // "FMAN"
constexpr uint32_t kManifestHeader = 4 + 8 + 4 + 4;
constexpr uint32_t kManifestPages = 2;

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

uint64_t AlignUp(uint64_t off) {
  return (off + kPageSize - 1) / kPageSize * kPageSize;
}

// Serializes one record into `out`.
void AppendRecord(std::string* out, uint8_t type, uint64_t epoch, uint64_t lsn,
                  std::string_view payload) {
  AppendPod<uint32_t>(out, kRecordMagic);
  size_t body_start = out->size();
  AppendPod<uint8_t>(out, type);
  AppendPod<uint64_t>(out, epoch);
  AppendPod<uint64_t>(out, lsn);
  AppendPod<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  uint64_t sum = Fnv1a64(
      std::string_view(out->data() + body_start, out->size() - body_start));
  AppendPod<uint64_t>(out, sum);
}

std::string CommitPayload(uint32_t num_pages, std::string_view metadata) {
  std::string payload;
  AppendPod<uint32_t>(&payload, num_pages);
  AppendPod<uint32_t>(&payload, static_cast<uint32_t>(metadata.size()));
  payload.append(metadata);
  return payload;
}

}  // namespace

void Wal::Append(PageId id, const char* image) {
  std::string payload;
  payload.reserve(4 + kPageSize);
  AppendPod<uint32_t>(&payload, id);
  payload.append(image, kPageSize);
  size_t before = pending_.size();
  AppendRecord(&pending_, kRecPageImage, epoch_, next_lsn_++, payload);
  ++stats_.appends;
  stats_.log_bytes += pending_.size() - before;
}

void Wal::AppendCommit(uint32_t num_pages, std::string_view metadata) {
  size_t before = pending_.size();
  AppendRecord(&pending_, kRecCommit, epoch_, next_lsn_++,
               CommitPayload(num_pages, metadata));
  stats_.log_bytes += pending_.size() - before;
  ++staged_commits_;
}

Wal::PendingFlush Wal::TakePending() {
  PendingFlush f;
  f.bytes = std::move(pending_);
  pending_.clear();
  f.first_page = tail_ / kPageSize;
  f.commits = staged_commits_;
  staged_commits_ = 0;
  uint64_t npages = (f.bytes.size() + kPageSize - 1) / kPageSize;
  f.new_tail = (f.first_page + npages) * kPageSize;
  // Reserving the extent up front lets batches staged during this unit's
  // device I/O land past it; page alignment keeps concurrent units from
  // ever sharing a log page.
  tail_ = f.new_tail;
  return f;
}

Status Wal::WriteFlush(const PendingFlush& flush) {
  size_t npages = (flush.bytes.size() + kPageSize - 1) / kPageSize;
  Page pg;
  for (size_t i = 0; i < npages; ++i) {
    size_t p = static_cast<size_t>(flush.first_page) + i;
    while (log_->NumPages() <= p) {
      FOCUS_ASSIGN_OR_RETURN(PageId fresh, log_->AllocatePage());
      (void)fresh;
    }
    pg.Zero();
    size_t off = i * kPageSize;
    size_t n = std::min<size_t>(kPageSize, flush.bytes.size() - off);
    std::memcpy(pg.data, flush.bytes.data() + off, n);
    // Ascending order matters: the commit record sits in the final pages,
    // so a crash mid flush can only lose the batch, never half-commit it.
    FOCUS_RETURN_IF_ERROR(
        log_->WritePage(static_cast<PageId>(p), pg.data));
  }
  return log_->Sync();
}

void Wal::FinishFlush(const PendingFlush& flush) {
  ++stats_.syncs;
  stats_.commits += flush.commits;
  if (flush.commits > 0) {
    ++stats_.group_commit_flushes;
    stats_.group_commit_max_batch =
        std::max(stats_.group_commit_max_batch, flush.commits);
  }
}

Status Wal::Commit(uint32_t num_pages, std::string_view metadata) {
  AppendCommit(num_pages, metadata);
  PendingFlush flush = TakePending();
  FOCUS_RETURN_IF_ERROR(WriteFlush(flush));
  FinishFlush(flush);
  return Status::OK();
}

Status Wal::Reset(uint64_t new_epoch, uint32_t num_pages,
                  std::string_view metadata) {
  // Every segment the old tail spanned becomes reusable under the new
  // epoch (recovery ignores stale-epoch records, so no erase is needed).
  stats_.segments_recycled += SegmentsSpanned(tail_);
  epoch_ = new_epoch;
  tail_ = 0;
  pending_.clear();
  staged_commits_ = 0;
  size_t before = pending_.size();
  AppendRecord(&pending_, kRecCheckpoint, epoch_, next_lsn_++,
               CommitPayload(num_pages, metadata));
  stats_.log_bytes += pending_.size() - before;
  PendingFlush flush = TakePending();
  FOCUS_RETURN_IF_ERROR(WriteFlush(flush));
  FinishFlush(flush);
  ++stats_.checkpoints;
  return Status::OK();
}

Result<Wal::Recovered> Wal::Recover() {
  uint32_t n = log_->NumPages();
  std::string buf(static_cast<size_t>(n) * kPageSize, '\0');
  for (uint32_t i = 0; i < n; ++i) {
    FOCUS_RETURN_IF_ERROR(log_->ReadPage(i, buf.data() + i * kPageSize));
  }

  Recovered rec;
  std::map<PageId, std::unique_ptr<Page>> staged;
  uint64_t staged_records = 0;
  uint64_t max_lsn = 0;
  uint64_t committed_end = 0;  // byte offset just past the last commit
  size_t off = 0;

  // Parses one record at `at`; returns its end offset or 0 on failure.
  auto parse_at = [&](size_t at) -> size_t {
    if (at + kRecHeader + kRecTrailer > buf.size()) return 0;
    const char* p = buf.data() + at;
    if (ReadPod<uint32_t>(p) != kRecordMagic) return 0;
    uint8_t type = ReadPod<uint8_t>(p + 4);
    if (type < kRecPageImage || type > kRecCheckpoint) return 0;
    uint64_t epoch = ReadPod<uint64_t>(p + 5);
    if (!rec.empty && epoch != rec.epoch) return 0;
    uint64_t lsn = ReadPod<uint64_t>(p + 13);
    uint32_t len = ReadPod<uint32_t>(p + 21);
    if (type == kRecPageImage && len != 4 + kPageSize) return 0;
    if (type != kRecPageImage && (len < 8 || len > kMaxMetadata + 8)) return 0;
    size_t end = at + kRecHeader + len + kRecTrailer;
    if (end > buf.size()) return 0;
    uint64_t sum =
        Fnv1a64(std::string_view(p + 4, kRecHeader - 4 + len));
    if (ReadPod<uint64_t>(p + kRecHeader + len) != sum) return 0;

    const char* payload = p + kRecHeader;
    if (type == kRecPageImage) {
      PageId id = ReadPod<uint32_t>(payload);
      auto page = std::make_unique<Page>();
      std::memcpy(page->data, payload + 4, kPageSize);
      staged[id] = std::move(page);
      ++staged_records;
    } else {
      uint32_t num_pages = ReadPod<uint32_t>(payload);
      uint32_t meta_len = ReadPod<uint32_t>(payload + 4);
      if (meta_len + 8 != len) return 0;
      for (auto& [id, page] : staged) rec.pages[id] = std::move(page);
      rec.replayed_records += staged_records;
      staged.clear();
      staged_records = 0;
      rec.have_horizon = true;
      rec.num_pages = num_pages;
      rec.metadata.assign(payload + 8, meta_len);
      if (type == kRecCommit) ++rec.commits;
      committed_end = end;
    }
    if (rec.empty) {
      rec.empty = false;
      rec.epoch = epoch;
    }
    max_lsn = std::max(max_lsn, lsn);
    return end;
  };

  while (off < buf.size()) {
    size_t end = parse_at(off);
    if (end == 0 && off % kPageSize != 0) {
      // Batches start on page boundaries (the flush pads); skip the
      // zero padding after the previous batch and retry.
      end = parse_at(AlignUp(off));
      if (end != 0) off = AlignUp(off);
    }
    if (end == 0) break;
    off = end;
  }
  // `staged` now holds only images from a batch whose commit record never
  // made it durable: the crash interrupted the flush. Discard them.

  epoch_ = rec.epoch;
  next_lsn_ = rec.empty ? 0 : max_lsn + 1;
  tail_ = AlignUp(committed_end);
  pending_.clear();
  staged_commits_ = 0;
  return rec;
}

Result<std::unique_ptr<WalDiskManager>> WalDiskManager::Open(
    DiskManager* data, DiskManager* log, Options options) {
  auto m = std::unique_ptr<WalDiskManager>(
      new WalDiskManager(data, log, options));
  FOCUS_RETURN_IF_ERROR(m->RecoverLocked());
  return m;
}

WalDiskManager::~WalDiskManager() {
  if (collector_id_ != 0) metrics_registry_->RemoveCollector(collector_id_);
}

Status WalDiskManager::RecoverLocked() {
  std::unique_lock<std::mutex> lock(mutex_);
  // A fresh data device gets its two manifest slots; after a crash during
  // creation one slot may be missing — both cases converge here.
  while (data_->NumPages() < kManifestPages) {
    FOCUS_ASSIGN_OR_RETURN(PageId fresh, data_->AllocatePage());
    (void)fresh;
  }

  // The manifest slots ping-pong by epoch parity; take the newest one
  // whose checksum holds (a torn manifest write loses only its slot).
  uint64_t m_epoch = 0;
  uint32_t m_pages = 0;
  std::string m_meta;
  bool have_manifest = false;
  Page pg;
  for (PageId slot = 0; slot < kManifestPages; ++slot) {
    FOCUS_RETURN_IF_ERROR(data_->ReadPage(slot, pg.data));
    if (ReadPod<uint32_t>(pg.data) != kManifestMagic) continue;
    uint64_t epoch = ReadPod<uint64_t>(pg.data + 4);
    uint32_t num_pages = ReadPod<uint32_t>(pg.data + 12);
    uint32_t meta_len = ReadPod<uint32_t>(pg.data + 16);
    if (meta_len > kPageSize - kManifestHeader - 8) continue;
    uint64_t sum = Fnv1a64(
        std::string_view(pg.data, kManifestHeader + meta_len));
    if (ReadPod<uint64_t>(pg.data + kManifestHeader + meta_len) != sum) {
      continue;
    }
    if (!have_manifest || epoch > m_epoch) {
      have_manifest = true;
      m_epoch = epoch;
      m_pages = num_pages;
      m_meta.assign(pg.data + kManifestHeader, meta_len);
    }
  }

  FOCUS_ASSIGN_OR_RETURN(Wal::Recovered rec, wal_.Recover());
  bool stale_log = false;
  if (!rec.empty && rec.epoch == m_epoch) {
    // The log continues the manifest's epoch: its committed batches are
    // the tail of history. Replay them over the checkpointed base.
    // The replayed images are committed (still described by the log), so
    // they are NOT re-marked dirty; the overlay just serves reads until
    // the next checkpoint folds them into the data device.
    overlay_ = std::move(rec.pages);
    replayed_ = rec.replayed_records;
    recovered_commits_ = rec.commits;
    num_pages_ = rec.have_horizon ? std::max(rec.num_pages, m_pages) : m_pages;
    metadata_ = rec.have_horizon ? rec.metadata : m_meta;
  } else if (!rec.empty && rec.epoch < m_epoch) {
    // Checkpoint completed through the manifest write, but the log reset
    // never landed: the data device already holds everything the stale
    // log describes.
    stale_log = true;
    num_pages_ = m_pages;
    metadata_ = m_meta;
  } else if (!rec.empty && rec.epoch > m_epoch) {
    // The checkpoint protocol syncs the manifest before resetting the
    // log, so this cannot happen short of device corruption.
    return Status::Internal(
        StrCat("log epoch ", rec.epoch, " ahead of manifest ", m_epoch));
  } else {
    // Empty log. Either a fresh store, or a crash tore the log reset
    // after the manifest advanced; the manifest state stands alone.
    stale_log = m_epoch > 0;
    num_pages_ = m_pages;
    metadata_ = m_meta;
  }
  epoch_ = m_epoch;
  recovered_metadata_ = metadata_;

  if (stale_log) {
    // Re-seat the log at the manifest's epoch so new appends are not
    // mistaken for records of a dead epoch.
    FOCUS_RETURN_IF_ERROR(wal_.Reset(epoch_, num_pages_, metadata_));
  }
  if (options_.checkpoint_after_recovery && (replayed_ > 0 || stale_log)) {
    // Copy: CheckpointLocked's inline commit assigns metadata_ from the
    // view it is given, which must not alias metadata_'s own buffer.
    std::string metadata = metadata_;
    FOCUS_RETURN_IF_ERROR(CheckpointLocked(metadata, lock));
  }
  return Status::OK();
}

Status WalDiskManager::ReadPage(PageId id, char* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = overlay_.find(id); it != overlay_.end()) {
    std::memcpy(out, it->second->data, kPageSize);
    ++stats_.reads;
    return Status::OK();
  }
  if (id >= num_pages_) {
    return Status::OutOfRange(StrCat("read of unallocated page ", id));
  }
  PageId phys = id + kManifestPages;
  if (phys >= data_->NumPages()) {
    // Every committed page is either checkpointed or in the overlay.
    return Status::Internal(StrCat("page ", id, " lost by recovery"));
  }
  FOCUS_RETURN_IF_ERROR(data_->ReadPage(phys, out));
  ++stats_.reads;
  return Status::OK();
}

Status WalDiskManager::ReadPages(PageId first, uint32_t n, char* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t i = 0;
  while (i < n) {
    PageId id = first + i;
    if (id >= num_pages_) {
      return Status::OutOfRange(StrCat("read of unallocated page ", id));
    }
    if (auto it = overlay_.find(id); it != overlay_.end()) {
      std::memcpy(out + static_cast<size_t>(i) * kPageSize, it->second->data,
                  kPageSize);
      ++stats_.reads;
      ++i;
      continue;
    }
    // Extend the contiguous run of non-overlay committed pages and forward
    // it to the data device as one batched read, so pool readahead keeps
    // its single-seek cost through the decorator.
    uint32_t run = 1;
    while (i + run < n) {
      PageId next = first + i + run;
      if (next >= num_pages_ || overlay_.count(next) != 0) break;
      ++run;
    }
    PageId phys = id + kManifestPages;
    if (static_cast<uint64_t>(phys) + run > data_->NumPages()) {
      return Status::Internal(StrCat("page ", id, " lost by recovery"));
    }
    FOCUS_RETURN_IF_ERROR(data_->ReadPages(
        phys, run, out + static_cast<size_t>(i) * kPageSize));
    stats_.reads += run;
    ++stats_.batch_reads;
    i += run;
  }
  return Status::OK();
}

Status WalDiskManager::WritePage(PageId id, const char* in) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= num_pages_) {
    return Status::OutOfRange(StrCat("write of unallocated page ", id));
  }
  auto& page = overlay_[id];
  if (page == nullptr) page = std::make_unique<Page>();
  std::memcpy(page->data, in, kPageSize);
  dirty_.insert(id);
  ++stats_.writes;
  return Status::OK();
}

Result<PageId> WalDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  PageId id = num_pages_++;
  auto page = std::make_unique<Page>();
  page->Zero();
  overlay_[id] = std::move(page);
  dirty_.insert(id);
  ++stats_.allocations;
  return id;
}

uint32_t WalDiskManager::NumPages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_pages_;
}

Status WalDiskManager::Sync() {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.syncs;
  std::string metadata = metadata_;  // CommitLocked may release the lock
  FOCUS_RETURN_IF_ERROR(CommitLocked(metadata, lock));
  return MaybeRecycleLocked(lock);
}

Status WalDiskManager::Commit(std::string_view metadata) {
  std::unique_lock<std::mutex> lock(mutex_);
  FOCUS_RETURN_IF_ERROR(CommitLocked(metadata, lock));
  return MaybeRecycleLocked(lock);
}

Status WalDiskManager::Checkpoint(std::string_view metadata) {
  std::unique_lock<std::mutex> lock(mutex_);
  return CheckpointLocked(metadata, lock);
}

Status WalDiskManager::CommitLocked(std::string_view metadata,
                                    std::unique_lock<std::mutex>& lock) {
  FOCUS_RETURN_IF_ERROR(log_failed_);
  if (dirty_.empty() && metadata == metadata_) return Status::OK();
  uint64_t logged = dirty_.size();
  for (PageId id : dirty_) {
    wal_.Append(id, overlay_[id]->data);
  }
  wal_.AppendCommit(num_pages_, metadata);
  dirty_.clear();
  metadata_.assign(metadata.data(), metadata.size());
  uint64_t my_seq = ++staged_seq_;

  // If another committer's flush is in flight, our batch is staged behind
  // its reserved extent: wait for a barrier that covers us, or for the
  // flight to end so we can lead the next one. The wait is bounded by one
  // log flush (plus the leader's optional linger).
  while (flush_in_progress_ && synced_seq_ < my_seq) {
    group_cv_.wait(lock);
  }
  FOCUS_RETURN_IF_ERROR(log_failed_);
  if (synced_seq_ < my_seq) {
    // Become the flush leader for everything staged so far.
    flush_in_progress_ = true;
    if (options_.group_commit_wait_us > 0) {
      // Bounded linger: let concurrent committers stage into our batch.
      // They see flush_in_progress_ and park above, so one barrier will
      // cover them all.
      group_cv_.wait_for(
          lock, std::chrono::duration<double, std::micro>(
                    options_.group_commit_wait_us));
    }
    Wal::PendingFlush flush = wal_.TakePending();
    uint64_t covered = staged_seq_;
    Status st;
    if (!flush.empty()) {
      // The log device is touched by exactly one flusher at a time
      // (flush_in_progress_), so the store lock can drop during the I/O
      // and followers keep staging.
      lock.unlock();
      st = wal_.WriteFlush(flush);
      lock.lock();
      if (st.ok()) {
        wal_.FinishFlush(flush);
        if (group_hist_ != nullptr && flush.commits > 0) {
          group_hist_->Observe(flush.commits);
        }
      } else {
        // The log tail state is now unknown; poison every later commit
        // until recovery re-establishes a consistent tail.
        log_failed_ = st;
      }
    }
    // An empty take means a concurrent checkpoint already flushed our
    // staged batch inline; it is durable.
    if (st.ok()) synced_seq_ = covered;
    flush_in_progress_ = false;
    group_cv_.notify_all();
    FOCUS_RETURN_IF_ERROR(st);
  }
  if (event_log_ != nullptr) {
    event_log_->Record(obs::CrawlEventType::kWalCommit, /*oid=*/-1,
                       /*parent_oid=*/-1, /*sid=*/-1, /*virtual_us=*/-1,
                       /*value=*/static_cast<double>(logged),
                       /*aux=*/static_cast<int64_t>(wal_.stats().commits));
  }
  return Status::OK();
}

Status WalDiskManager::MaybeRecycleLocked(std::unique_lock<std::mutex>& lock) {
  if (options_.recycle_after_segments == 0) return Status::OK();
  if (wal_.segment_stats().segments_in_use < options_.recycle_after_segments) {
    return Status::OK();
  }
  // Copy: CheckpointLocked may release the lock while a committer
  // reassigns metadata_, and its inline commit must not self-assign.
  std::string metadata = metadata_;
  return CheckpointLocked(metadata, lock);
}

Status WalDiskManager::CheckpointLocked(std::string_view metadata,
                                        std::unique_lock<std::mutex>& lock) {
  // Wait out any in-flight group flush: between the commit below and the
  // log reset, no other thread may touch the log device.
  while (flush_in_progress_) {
    group_cv_.wait(lock);
  }
  FOCUS_RETURN_IF_ERROR(log_failed_);
  // Commit inline with the lock held throughout (no group coalescing): a
  // page written by another thread between this commit and the overlay
  // fold below would otherwise be clobbered. This also flushes any batch a
  // parked committer staged before we got the lock — its pages are in the
  // overlay we are about to fold, so it stays durable across the reset.
  if (!dirty_.empty() || metadata != metadata_) {
    uint64_t logged = dirty_.size();
    for (PageId id : dirty_) {
      wal_.Append(id, overlay_[id]->data);
    }
    FOCUS_RETURN_IF_ERROR(wal_.Commit(num_pages_, metadata));
    dirty_.clear();
    metadata_.assign(metadata.data(), metadata.size());
    if (event_log_ != nullptr) {
      event_log_->Record(obs::CrawlEventType::kWalCommit, /*oid=*/-1,
                         /*parent_oid=*/-1, /*sid=*/-1, /*virtual_us=*/-1,
                         /*value=*/static_cast<double>(logged),
                         /*aux=*/static_cast<int64_t>(wal_.stats().commits));
    }
  }
  if (overlay_.empty() && epoch_ > 0) return Status::OK();
  for (const auto& [id, page] : overlay_) {
    PageId phys = id + kManifestPages;
    while (data_->NumPages() <= phys) {
      FOCUS_ASSIGN_OR_RETURN(PageId fresh, data_->AllocatePage());
      (void)fresh;
    }
    FOCUS_RETURN_IF_ERROR(data_->WritePage(phys, page->data));
  }
  FOCUS_RETURN_IF_ERROR(data_->Sync());
  FOCUS_RETURN_IF_ERROR(WriteManifestLocked(epoch_ + 1, metadata_));
  FOCUS_RETURN_IF_ERROR(data_->Sync());
  FOCUS_RETURN_IF_ERROR(wal_.Reset(epoch_ + 1, num_pages_, metadata_));
  ++epoch_;
  overlay_.clear();
  dirty_.clear();
  if (event_log_ != nullptr) {
    event_log_->Record(obs::CrawlEventType::kWalCheckpoint, /*oid=*/-1,
                       /*parent_oid=*/-1, /*sid=*/-1, /*virtual_us=*/-1,
                       /*value=*/0.0, /*aux=*/static_cast<int64_t>(epoch_));
  }
  return Status::OK();
}

Status WalDiskManager::WriteManifestLocked(uint64_t epoch,
                                           std::string_view metadata) {
  if (metadata.size() > kPageSize - kManifestHeader - 8) {
    return Status::InvalidArgument(
        StrCat("manifest metadata too large: ", metadata.size(), " bytes"));
  }
  std::string bytes;
  bytes.reserve(kPageSize);
  AppendPod<uint32_t>(&bytes, kManifestMagic);
  AppendPod<uint64_t>(&bytes, epoch);
  AppendPod<uint32_t>(&bytes, num_pages_);
  AppendPod<uint32_t>(&bytes, static_cast<uint32_t>(metadata.size()));
  bytes.append(metadata);
  AppendPod<uint64_t>(&bytes, Fnv1a64(bytes));
  Page pg;
  pg.Zero();
  std::memcpy(pg.data, bytes.data(), bytes.size());
  PageId slot = static_cast<PageId>(epoch % kManifestPages);
  return data_->WritePage(slot, pg.data);
}

WalStats WalDiskManager::wal_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WalStats s = wal_.stats();
  s.recovery_replayed = replayed_;
  s.recovered_commits = recovered_commits_;
  return s;
}

Wal::SegmentStats WalDiskManager::wal_segment_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wal_.segment_stats();
}

void WalDiskManager::BindMetrics(obs::MetricsRegistry* registry,
                                 std::string name) {
  if (collector_id_ != 0) metrics_registry_->RemoveCollector(collector_id_);
  metrics_registry_ = obs::MetricsRegistry::OrGlobal(registry);
  obs::Labels labels = {{"wal", std::move(name)}};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    group_hist_ = metrics_registry_->GetHistogram(
        "focus_wal_group_commit_batch_size", labels);
  }
  collector_id_ = metrics_registry_->AddCollector(
      [this, labels](std::vector<obs::GaugeSample>* out) {
        WalStats s = wal_stats();
        Wal::SegmentStats seg = wal_segment_stats();
        size_t overlay_pages;
        uint64_t epoch;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          overlay_pages = overlay_.size();
          epoch = epoch_;
        }
        auto emit = [&](const char* n, uint64_t v) {
          out->push_back({n, labels, static_cast<double>(v)});
        };
        emit("focus_wal_appends_total", s.appends);
        emit("focus_wal_syncs_total", s.syncs);
        emit("focus_wal_commits_total", s.commits);
        emit("focus_wal_checkpoints_total", s.checkpoints);
        emit("focus_wal_log_bytes_total", s.log_bytes);
        emit("focus_wal_recovery_replayed_total", s.recovery_replayed);
        emit("focus_wal_recovered_commits_total", s.recovered_commits);
        emit("focus_wal_overlay_pages", overlay_pages);
        emit("focus_wal_epoch", epoch);
        emit("focus_wal_group_commit_flushes_total", s.group_commit_flushes);
        emit("focus_wal_group_commit_max_batch", s.group_commit_max_batch);
        emit("focus_wal_segment_pages", seg.segment_pages);
        emit("focus_wal_segments_in_use", seg.segments_in_use);
        emit("focus_wal_segments_recycled_total", seg.segments_recycled);
        emit("focus_wal_log_tail_bytes", seg.tail_bytes);
        emit("focus_wal_log_device_pages", seg.device_pages);
      });
}

void WalDiskManager::BindEventLog(obs::EventLog* log) {
  std::lock_guard<std::mutex> lock(mutex_);
  event_log_ = log;
  if (event_log_ != nullptr && replayed_ > 0) {
    // Recovery ran inside Open(), before any log could be attached:
    // report it retrospectively so the event stream still shows the
    // replay boundary ahead of post-recovery events.
    event_log_->Record(obs::CrawlEventType::kWalReplay, /*oid=*/-1,
                       /*parent_oid=*/-1, /*sid=*/-1, /*virtual_us=*/-1,
                       /*value=*/static_cast<double>(recovered_commits_),
                       /*aux=*/static_cast<int64_t>(replayed_));
  }
}

}  // namespace focus::storage
