// Sharded, scan-resistant buffer pool.
//
// Every table and index access in focus goes through this pool, so the
// hit/miss counters directly measure the access-path behaviour that the
// paper's Figure 8 experiments are about (random index probes vs sequential
// sort-merge scans under a bounded number of 4 KiB frames).
//
// Layout. Frames are partitioned by PageId hash into K sub-pools
// ("shards"), each with its own reader/writer latch, page table and free
// list. A fetch that finds its page resident takes only the shard latch in
// shared mode and bumps the pin count atomically — concurrent hits on
// different pages (or even the same page) never serialize on a writer
// lock. Misses, evictions and prefetch installs take the shard latch
// exclusively; raw device I/O is serialized pool-wide by a separate I/O
// mutex (DiskManager implementations are not thread safe), so a miss in
// one shard never blocks hits in any shard. Frames are owned by shards
// but not imprisoned in them: a fetch into a fully-pinned shard steals an
// evictable frame from a neighbour, so pin capacity stays pool-global —
// callers holding up to num_frames concurrent pins never see a spurious
// ResourceExhausted just because PageId hashing concentrated their pins.
//
// Replacement is a 2Q variant keyed on a per-frame use count:
//   A1   — fetched exactly once (the "cold" A1 queue of 2Q): evicted
//          first, in LRU order. A sequential flood — a heap scan touching
//          every page once — churns entirely here and cannot evict hot
//          pages, which is the scan-resistance property
//          tests/storage_pool_test.cc pins down.
//   spec — prefetched, never fetched: speculation whose value is still
//          ahead; protected from the flood, second in line otherwise.
//   hot  — fetched two or more times (index upper levels, roots, hot STAT
//          pages). Use counts only grow, so 2Q's Am bound applies: once
//          hot frames exceed half a shard, the LRU hot frame is evicted
//          ahead of speculation — otherwise every frame eventually looks
//          hot and readahead is squeezed into a handful of churn frames.
//
// Readahead. Prefetch(first, n) batch-reads a contiguous page run in one
// DiskManager::ReadPages op (one simulated seek instead of n) and installs
// the missing pages as evict-first speculation. HeapFile and B+-tree
// iterators call it when advancing along their page chains; with
// Options::auto_readahead the pool additionally detects ascending miss
// streams itself (a small stream table with forward-gap and back-step
// tolerance, so interleaved heap/leaf page streams of one region merge
// into one stream) and reads ahead of them. Each stream remembers its
// issued edge: a swept region is transferred from disk at most once, and
// the first use of a prefetched page near the edge extends the window
// ahead of the consumer (pipelining), so a steady consumer misses only at
// stream startup. Readahead is purely advisory: failures are swallowed
// and speculation never fails the fetch that triggered it.
//
// Crash safety: the pool itself is free to write back dirty pages at any
// time (eviction, FlushAll). When the DiskManager underneath is a
// WalDiskManager (wal.h), those write-backs land in the WAL's in-memory
// overlay, not on the data device, so the redo-log flush-order discipline
// — log record synced before a dirty page may reach the platter — holds
// structurally: uncommitted pages simply never reach the data device, and
// the data device is only written at checkpoints, after the log sync.
#ifndef FOCUS_STORAGE_BUFFER_POOL_H_
#define FOCUS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace focus::storage {

class BufferPool {
 public:
  struct Options {
    // Number of sub-pools. 0 = auto: one shard per 64 frames, capped at 8,
    // so small test pools stay single-sharded (exact LRU-observable
    // behaviour) and big pools spread latch pressure.
    size_t shards = 0;
    // Pages fetched per readahead batch (explicit Prefetch callers may ask
    // for more; auto-detected streams use exactly this). 0 disables
    // auto-readahead issue even when auto_readahead is set.
    uint32_t readahead_window = 16;
    // Readahead master switch: enables iterator-cooperative chain prefetch
    // (MaybePrefetchChain) and the pool's own ascending miss-stream
    // detection for access paths with no iterator cooperation. Off by
    // default: tests that count cold misses rely on the pool reading
    // exactly the pages asked for.
    bool auto_readahead = false;
  };

  struct Stats {
    uint64_t fetches = 0;    // FetchPage calls
    uint64_t hits = 0;       // served from a resident frame
    uint64_t misses = 0;     // required a disk read
    uint64_t evictions = 0;  // victim frames recycled
    uint64_t dirty_writebacks = 0;
    uint64_t readahead_issued = 0;  // pages installed by Prefetch
    uint64_t readahead_used = 0;    // prefetched pages later fetched

    Stats operator-(const Stats& other) const {
      Stats d;
      d.fetches = fetches - other.fetches;
      d.hits = hits - other.hits;
      d.misses = misses - other.misses;
      d.evictions = evictions - other.evictions;
      d.dirty_writebacks = dirty_writebacks - other.dirty_writebacks;
      d.readahead_issued = readahead_issued - other.readahead_issued;
      d.readahead_used = readahead_used - other.readahead_used;
      return d;
    }
    double hit_ratio() const {
      return fetches == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(fetches);
    }
  };

  // The pool holds at most `num_frames` pages of `disk`. `disk` must outlive
  // the pool.
  BufferPool(DiskManager* disk, size_t num_frames)
      : BufferPool(disk, num_frames, Options{}) {}
  BufferPool(DiskManager* disk, size_t num_frames, Options options);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Registers a snapshot-time collector exporting this pool's hit/miss/
  // eviction/readahead counters and hit ratio (and the backing DiskManager's
  // read/write counters) as focus_bufferpool_* / focus_disk_* samples
  // labeled {pool=pool_name}, plus per-shard fetch/hit/miss samples labeled
  // {pool=pool_name, shard=i}. Rebinding replaces the previous binding; the
  // destructor unregisters.
  void BindMetrics(obs::MetricsRegistry* registry, std::string pool_name);

  // Pins page `id` in memory and returns it. The caller must balance with
  // UnpinPage. When the page's shard is fully pinned, a frame is stolen
  // from another shard, so pin capacity is pool-global: this fails only
  // when no shard in the whole pool has an evictable frame.
  Result<Page*> FetchPage(PageId id);

  // Allocates a fresh page on disk, pins it and returns it via `out_id`.
  Result<Page*> NewPage(PageId* out_id);

  // Releases one pin; `dirty` marks the frame for write-back on eviction.
  // The dirty bit only ever accumulates (unpinning clean never clears a
  // dirty mark left by an earlier pin); eviction/flush clears it after the
  // write-back.
  void UnpinPage(PageId id, bool dirty);

  // Advisory batched readahead: reads pages [first, first + n) in one
  // ReadPages op and installs the non-resident ones as evict-first
  // speculation. Returns immediately if the first page is already resident
  // (the common mid-window case for chained iterators). Never fails the
  // caller: I/O errors and frame exhaustion just mean no speculation.
  void Prefetch(PageId first, uint32_t n);

  // Iterator cooperation: HeapFile and B+-tree iterators call this when
  // advancing to the next page of their chain. A no-op unless readahead is
  // enabled (Options::auto_readahead), so scans through a default pool
  // read exactly the pages they touch — tests that count cold misses
  // depend on that.
  void MaybePrefetchChain(PageId next) {
    if (options_.auto_readahead && options_.readahead_window > 0 &&
        next != kInvalidPageId) {
      Prefetch(next, options_.readahead_window);
    }
  }

  // Writes back every dirty resident page.
  Status FlushAll();

  // Drops every unpinned page (writing back dirty ones). Used by benchmarks
  // to measure cold-cache behaviour.
  Status EvictAll();

  size_t num_frames() const { return num_frames_; }
  size_t num_shards() const { return shards_.size(); }
  uint32_t readahead_window() const { return options_.readahead_window; }
  // Aggregated over shards; a point-in-time snapshot, not a reference.
  Stats stats() const;
  // Counters of one shard (i < num_shards()).
  Stats shard_stats(size_t i) const;
  void ResetStats();

 private:
  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    std::atomic<int32_t> pin_count{0};
    std::atomic<uint64_t> last_used{0};
    // 0 = prefetched & untouched, 1 = fetched once, >= 2 = hot. Saturating
    // in spirit: only the 0/1/2+ distinction matters for eviction.
    std::atomic<uint32_t> uses{0};
    std::atomic<bool> dirty{false};
  };

  // Per-shard atomic counters (bumped on the shared-latch hit path).
  struct ShardStats {
    std::atomic<uint64_t> fetches{0}, hits{0}, misses{0}, evictions{0},
        dirty_writebacks{0}, readahead_issued{0}, readahead_used{0};
  };

  struct Shard {
    mutable std::shared_mutex latch;
    // Slots may be null: a fully-pinned shard steals frames from its
    // neighbours (StealFrameLocked), leaving holes behind. Holes are never
    // referenced by `table` or `free_frames`; index scans must skip them.
    std::vector<std::unique_ptr<Frame>> frames;
    std::unordered_map<PageId, size_t> table;
    std::vector<size_t> free_frames;
    std::atomic<uint64_t> clock{0};
    // Advances on every write-back of one of this shard's pages. Prefetch
    // samples it under io_mutex_ when it batch-reads, and refuses to
    // install any page of a shard whose generation moved since: a page
    // fetched, modified, and evicted inside that window would otherwise be
    // resurrected from the pre-modification disk image.
    std::atomic<uint64_t> writeback_gen{0};
    ShardStats stats;
  };

  // Ascending miss-stream tracker for auto-readahead.
  struct Stream {
    PageId next = kInvalidPageId;  // first page the stream expects next
    PageId issued = 0;  // exclusive edge of pages already prefetched; the
                        // stream never re-reads below it, so each page of
                        // a swept region costs at most one disk transfer
    uint32_t run = 0;   // consecutive matching misses
    uint64_t tick = 0;  // LRU stamp for stream replacement
  };

  size_t ShardOf(PageId id) const {
    // Fibonacci hash: contiguous runs spread across shards so one scan
    // exercises every latch instead of convoying on one.
    return (static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull >> 32) %
           shards_.size();
  }

  // Picks a frame to hold a new page: a free frame if any, else the
  // least-recently-used unpinned frame of the lowest populated level
  // (writing it back if dirty). With `allow_steal`, a fully-pinned shard
  // falls back to migrating an evictable frame from another shard, so
  // fetches fail only when the whole pool is pinned. Caller holds the
  // shard latch exclusively.
  Result<size_t> GetVictimLocked(Shard* shard, bool allow_steal);
  // Moves an evictable frame out of some other shard into `shard` and
  // returns its new index there. Donor latches are try-locked (we already
  // hold `shard`'s latch, and lock order between shards is undefined), so
  // a contended donor is simply skipped.
  Result<size_t> StealFrameLocked(Shard* shard);
  // Installs a hit on `f` from the shared-latch path (pin + touch + level
  // promotion + readahead-used accounting).
  Page* TouchHitLocked(Shard* shard, Frame* f, bool* first_spec_use);
  void MaybeAutoReadahead(PageId missed);
  // Pipelined window extension: called (latch-free) when a prefetched
  // page is consumed for the first time. If the consumer is within
  // kStreamLead pages of its stream's issued edge, the next window is
  // read before the consumer can miss at the edge.
  void MaybeExtendReadahead(PageId used);

  const Options options_;
  DiskManager* disk_;
  size_t num_frames_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Serializes every disk_ call: DiskManager implementations are not
  // thread safe. Never held while acquiring a shard latch (the only
  // nesting order is shard -> try-locked donor shard -> io).
  mutable std::mutex io_mutex_;

  std::mutex streams_mutex_;
  std::vector<Stream> streams_;
  uint64_t stream_tick_ = 0;

#ifdef FOCUS_SANITIZE
  // Pin/unpin balance: every successful FetchPage/NewPage must be matched
  // by exactly one UnpinPage before the pool dies.
  std::atomic<int64_t> outstanding_pins_{0};
#endif

  obs::MetricsRegistry* metrics_registry_ = nullptr;
  uint64_t collector_id_ = 0;  // 0 = not bound
};

// RAII pin guard. Fetches on construction (check ok()), unpins on
// destruction. Movable: ownership of the pin transfers and the moved-from
// guard becomes released; copying is still forbidden. Release() is
// idempotent, and a MarkDirty() before Release() is never lost — the pool
// merges the dirty flag into the frame on unpin.
class PageGuard {
 public:
  PageGuard(BufferPool* pool, PageId id) : pool_(pool), id_(id) {
    auto r = pool->FetchPage(id);
    if (r.ok()) {
      page_ = r.value();
    } else {
      status_ = r.status();
    }
  }
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  PageGuard(PageGuard&& other) noexcept
      : pool_(other.pool_),
        id_(other.id_),
        page_(std::exchange(other.page_, nullptr)),
        dirty_(other.dirty_),
        status_(std::move(other.status_)) {}
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      id_ = other.id_;
      page_ = std::exchange(other.page_, nullptr);
      dirty_ = other.dirty_;
      status_ = std::move(other.status_);
    }
    return *this;
  }

  bool ok() const { return page_ != nullptr; }
  const Status& status() const { return status_; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }
  PageId id() const { return id_; }
  void MarkDirty() { dirty_ = true; }

  // Unpins early (idempotent).
  void Release() {
    if (page_ != nullptr) {
      pool_->UnpinPage(id_, dirty_);
      page_ = nullptr;
    }
  }

 private:
  BufferPool* pool_;
  PageId id_;
  Page* page_ = nullptr;
  bool dirty_ = false;
  Status status_;
};

}  // namespace focus::storage

#endif  // FOCUS_STORAGE_BUFFER_POOL_H_
