// LRU buffer pool.
//
// Every table and index access in focus goes through this pool, so the
// hit/miss counters directly measure the access-path behaviour that the
// paper's Figure 8 experiments are about (random index probes vs sequential
// sort-merge scans under a bounded number of 4 KiB frames).
//
// Crash safety: the pool itself is free to write back dirty pages at any
// time (eviction, FlushAll). When the DiskManager underneath is a
// WalDiskManager (wal.h), those write-backs land in the WAL's in-memory
// overlay, not on the data device, so the redo-log flush-order discipline
// — log record synced before a dirty page may reach the platter — holds
// structurally: uncommitted pages simply never reach the data device, and
// the data device is only written at checkpoints, after the log sync.
#ifndef FOCUS_STORAGE_BUFFER_POOL_H_
#define FOCUS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace focus::storage {

class BufferPool {
 public:
  struct Stats {
    uint64_t fetches = 0;    // FetchPage calls
    uint64_t hits = 0;       // served from a resident frame
    uint64_t misses = 0;     // required a disk read
    uint64_t evictions = 0;  // victim frames recycled
    uint64_t dirty_writebacks = 0;

    Stats operator-(const Stats& other) const {
      Stats d;
      d.fetches = fetches - other.fetches;
      d.hits = hits - other.hits;
      d.misses = misses - other.misses;
      d.evictions = evictions - other.evictions;
      d.dirty_writebacks = dirty_writebacks - other.dirty_writebacks;
      return d;
    }
  };

  // The pool holds at most `num_frames` pages of `disk`. `disk` must outlive
  // the pool.
  BufferPool(DiskManager* disk, size_t num_frames);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Registers a snapshot-time collector exporting this pool's hit/miss/
  // eviction counters (and the backing DiskManager's read/write counters)
  // as focus_bufferpool_* / focus_disk_* samples labeled {pool=pool_name}.
  // Rebinding replaces the previous binding; the destructor unregisters.
  void BindMetrics(obs::MetricsRegistry* registry, std::string pool_name);

  // Pins page `id` in memory and returns it. The caller must balance with
  // UnpinPage. Fails if every frame is pinned.
  Result<Page*> FetchPage(PageId id);

  // Allocates a fresh page on disk, pins it and returns it via `out_id`.
  Result<Page*> NewPage(PageId* out_id);

  // Releases one pin; `dirty` marks the frame for write-back on eviction.
  void UnpinPage(PageId id, bool dirty);

  // Writes back every dirty resident page.
  Status FlushAll();

  // Drops every unpinned page (writing back dirty ones). Used by benchmarks
  // to measure cold-cache behaviour.
  Status EvictAll();

  size_t num_frames() const { return frames_.size(); }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    // Position in lru_ when the frame is resident and unpinned-eligible.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  // Picks a frame to hold a new page: a free frame if any, else the least
  // recently used unpinned frame (writing it back if dirty).
  Result<size_t> GetVictimFrame();
  void Touch(size_t frame_idx);

  DiskManager* disk_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = most recent
  std::unordered_map<PageId, size_t> page_table_;
  Stats stats_;
  mutable std::mutex mutex_;

  obs::MetricsRegistry* metrics_registry_ = nullptr;
  uint64_t collector_id_ = 0;  // 0 = not bound
};

// RAII pin guard. Fetches on construction (check ok()), unpins on
// destruction.
class PageGuard {
 public:
  PageGuard(BufferPool* pool, PageId id) : pool_(pool), id_(id) {
    auto r = pool->FetchPage(id);
    if (r.ok()) {
      page_ = r.value();
    } else {
      status_ = r.status();
    }
  }
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool ok() const { return page_ != nullptr; }
  const Status& status() const { return status_; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }
  void MarkDirty() { dirty_ = true; }

  // Unpins early (idempotent).
  void Release() {
    if (page_ != nullptr) {
      pool_->UnpinPage(id_, dirty_);
      page_ = nullptr;
    }
  }

 private:
  BufferPool* pool_;
  PageId id_;
  Page* page_ = nullptr;
  bool dirty_ = false;
  Status status_;
};

}  // namespace focus::storage

#endif  // FOCUS_STORAGE_BUFFER_POOL_H_
