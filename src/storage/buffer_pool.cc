#include "storage/buffer_pool.h"

#include "util/string_util.h"

namespace focus::storage {

BufferPool::BufferPool(DiskManager* disk, size_t num_frames) : disk_(disk) {
  if (num_frames < 4) num_frames = 4;  // room for a root, a leaf, a heap page
  frames_.reserve(num_frames);
  free_frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_frames_.push_back(num_frames - 1 - i);
  }
}

BufferPool::~BufferPool() {
  if (collector_id_ != 0) metrics_registry_->RemoveCollector(collector_id_);
}

void BufferPool::BindMetrics(obs::MetricsRegistry* registry,
                             std::string pool_name) {
  if (collector_id_ != 0) metrics_registry_->RemoveCollector(collector_id_);
  metrics_registry_ = obs::MetricsRegistry::OrGlobal(registry);
  obs::Labels labels = {{"pool", std::move(pool_name)}};
  collector_id_ = metrics_registry_->AddCollector(
      [this, labels](std::vector<obs::GaugeSample>* out) {
        Stats pool;
        DiskManager::Stats disk;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          pool = stats_;
          disk = disk_->stats();
        }
        auto emit = [&](const char* name, uint64_t v) {
          out->push_back({name, labels, static_cast<double>(v)});
        };
        emit("focus_bufferpool_fetches_total", pool.fetches);
        emit("focus_bufferpool_hits_total", pool.hits);
        emit("focus_bufferpool_misses_total", pool.misses);
        emit("focus_bufferpool_evictions_total", pool.evictions);
        emit("focus_bufferpool_dirty_writebacks_total",
             pool.dirty_writebacks);
        emit("focus_bufferpool_frames", frames_.size());
        emit("focus_disk_reads_total", disk.reads);
        emit("focus_disk_writes_total", disk.writes);
        emit("focus_disk_allocations_total", disk.allocations);
        emit("focus_disk_syncs_total", disk.syncs);
      });
}

void BufferPool::Touch(size_t frame_idx) {
  Frame& f = *frames_[frame_idx];
  if (f.in_lru) lru_.erase(f.lru_pos);
  lru_.push_front(frame_idx);
  f.lru_pos = lru_.begin();
  f.in_lru = true;
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  // Scan from least-recently-used; skip pinned frames.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t idx = *it;
    Frame& f = *frames_[idx];
    if (f.pin_count > 0) continue;
    if (f.dirty) {
      FOCUS_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.page.data));
      ++stats_.dirty_writebacks;
      f.dirty = false;
    }
    page_table_.erase(f.page_id);
    lru_.erase(std::next(it).base());
    f.in_lru = false;
    f.page_id = kInvalidPageId;
    ++stats_.evictions;
    return idx;
  }
  return Status::ResourceExhausted(
      StrCat("all ", frames_.size(), " buffer frames are pinned"));
}

Result<Page*> BufferPool::FetchPage(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.fetches;
  if (auto it = page_table_.find(id); it != page_table_.end()) {
    ++stats_.hits;
    Frame& f = *frames_[it->second];
    ++f.pin_count;
    Touch(it->second);
    return &f.page;
  }
  ++stats_.misses;
  FOCUS_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = *frames_[idx];
  Status s = disk_->ReadPage(id, f.page.data);
  if (!s.ok()) {
    free_frames_.push_back(idx);
    return s;
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  page_table_[id] = idx;
  Touch(idx);
  return &f.page;
}

Result<Page*> BufferPool::NewPage(PageId* out_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  FOCUS_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  FOCUS_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = *frames_[idx];
  f.page.Zero();
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;  // must be written back even if untouched
  page_table_[id] = idx;
  Touch(idx);
  *out_id = id;
  return &f.page;
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return;
  Frame& f = *frames_[it->second];
  if (f.pin_count > 0) --f.pin_count;
  if (dirty) f.dirty = true;
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [page_id, idx] : page_table_) {
    Frame& f = *frames_[idx];
    if (f.dirty) {
      FOCUS_RETURN_IF_ERROR(disk_->WritePage(page_id, f.page.data));
      ++stats_.dirty_writebacks;
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = page_table_.begin(); it != page_table_.end();) {
    Frame& f = *frames_[it->second];
    if (f.pin_count > 0) {
      ++it;
      continue;
    }
    if (f.dirty) {
      FOCUS_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.page.data));
      ++stats_.dirty_writebacks;
      f.dirty = false;
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    free_frames_.push_back(it->second);
    f.page_id = kInvalidPageId;
    it = page_table_.erase(it);
  }
  return Status::OK();
}

}  // namespace focus::storage
