#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace focus::storage {

namespace {
// Auto-sharding: one sub-pool per this many frames, capped below.
constexpr size_t kFramesPerShard = 64;
constexpr size_t kMaxAutoShards = 8;
// Concurrent ascending miss streams tracked for auto-readahead. Table
// builds interleave heap and index pages, so two or three streams advance
// at once; eight gives slack without scanning cost.
constexpr size_t kMaxStreams = 8;
// A stream stays alive if the next miss lands within (window + gap) pages
// of the predicted position: pages served by the previous readahead batch
// produce no misses, so the stream only "hears" from its consumer again at
// the window edge.
constexpr uint32_t kStreamGap = 4;
// Back-step tolerance: interleaved sub-streams of one region (heap pages
// and the index leaves allocated alongside them) miss a few pages behind
// the stream head without being a different stream.
constexpr uint32_t kStreamBack = 8;
// Pipelining distance: once a consumer touches a prefetched page within
// this many pages of the stream's issued edge, the next window is read
// immediately, so a steady consumer never stalls on an edge miss.
constexpr uint32_t kStreamLead = 8;
}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t num_frames, Options options)
    : options_(options), disk_(disk) {
  if (num_frames < 4) num_frames = 4;  // room for a root, a leaf, a heap page
  num_frames_ = num_frames;
  size_t shards = options_.shards;
  if (shards == 0) {
    shards = std::clamp<size_t>(num_frames / kFramesPerShard, 1,
                                kMaxAutoShards);
  }
  // Every shard needs enough frames for one descent (root, leaf, heap).
  shards = std::clamp<size_t>(shards, 1, std::max<size_t>(1, num_frames / 4));
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    size_t n = num_frames / shards + (s < num_frames % shards ? 1 : 0);
    shard->frames.reserve(n);
    shard->free_frames.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shard->frames.push_back(std::make_unique<Frame>());
      shard->free_frames.push_back(n - 1 - i);
    }
    shards_.push_back(std::move(shard));
  }
  streams_.resize(kMaxStreams);
}

BufferPool::~BufferPool() {
  if (collector_id_ != 0) metrics_registry_->RemoveCollector(collector_id_);
#ifdef FOCUS_SANITIZE
  int64_t pins = outstanding_pins_.load(std::memory_order_relaxed);
  if (pins != 0) {
    std::fprintf(stderr,
                 "BufferPool destroyed with %lld outstanding pin(s): some "
                 "FetchPage/NewPage was never balanced by UnpinPage\n",
                 static_cast<long long>(pins));
    std::abort();
  }
#endif
}

void BufferPool::BindMetrics(obs::MetricsRegistry* registry,
                             std::string pool_name) {
  if (collector_id_ != 0) metrics_registry_->RemoveCollector(collector_id_);
  metrics_registry_ = obs::MetricsRegistry::OrGlobal(registry);
  obs::Labels labels = {{"pool", std::move(pool_name)}};
  collector_id_ = metrics_registry_->AddCollector(
      [this, labels](std::vector<obs::GaugeSample>* out) {
        Stats pool = stats();
        DiskManager::Stats disk;
        {
          std::lock_guard<std::mutex> lock(io_mutex_);
          disk = disk_->stats();
        }
        auto emit = [&](const char* name, double v) {
          out->push_back({name, labels, v});
        };
        emit("focus_bufferpool_fetches_total", pool.fetches);
        emit("focus_bufferpool_hits_total", pool.hits);
        emit("focus_bufferpool_misses_total", pool.misses);
        emit("focus_bufferpool_evictions_total", pool.evictions);
        emit("focus_bufferpool_dirty_writebacks_total",
             pool.dirty_writebacks);
        emit("focus_bufferpool_readahead_issued_total",
             pool.readahead_issued);
        emit("focus_bufferpool_readahead_used_total", pool.readahead_used);
        emit("focus_bufferpool_hit_ratio", pool.hit_ratio());
        emit("focus_bufferpool_frames", num_frames_);
        emit("focus_bufferpool_shards", shards_.size());
        emit("focus_disk_reads_total", disk.reads);
        emit("focus_disk_batch_reads_total", disk.batch_reads);
        emit("focus_disk_writes_total", disk.writes);
        emit("focus_disk_allocations_total", disk.allocations);
        emit("focus_disk_syncs_total", disk.syncs);
        for (size_t s = 0; s < shards_.size(); ++s) {
          Stats sh = shard_stats(s);
          obs::Labels sl = labels;
          sl.push_back({"shard", StrCat(s)});
          auto emit_shard = [&](const char* name, double v) {
            out->push_back({name, sl, v});
          };
          emit_shard("focus_bufferpool_shard_fetches_total", sh.fetches);
          emit_shard("focus_bufferpool_shard_hits_total", sh.hits);
          emit_shard("focus_bufferpool_shard_misses_total", sh.misses);
          emit_shard("focus_bufferpool_shard_evictions_total", sh.evictions);
        }
      });
}

Page* BufferPool::TouchHitLocked(Shard* shard, Frame* f,
                                 bool* first_spec_use) {
  f->pin_count.fetch_add(1, std::memory_order_acq_rel);
  f->last_used.store(
      shard->clock.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  uint32_t prev = f->uses.fetch_add(1, std::memory_order_relaxed);
  shard->stats.hits.fetch_add(1, std::memory_order_relaxed);
  if (prev == 0) {
    // First touch of a prefetched frame: the speculation paid off.
    shard->stats.readahead_used.fetch_add(1, std::memory_order_relaxed);
    *first_spec_use = true;
  }
#ifdef FOCUS_SANITIZE
  outstanding_pins_.fetch_add(1, std::memory_order_relaxed);
#endif
  return &f->page;
}

Result<size_t> BufferPool::GetVictimLocked(Shard* shard, bool allow_steal) {
  if (!shard->free_frames.empty()) {
    size_t idx = shard->free_frames.back();
    shard->free_frames.pop_back();
    return idx;
  }
  // 2Q-style victim choice over three frame classes:
  //   A1   — fetched exactly once (a scan's consumed pages): evict first,
  //          LRU order. A sequential flood churns here and can never push
  //          out a hot index page while any A1 frame is evictable.
  //   spec — prefetched, never fetched: speculation with known future
  //          value; protected while the hot queue is over budget.
  //   hot  — fetched twice or more. Use counts only ever grow, so without
  //          a bound every frame eventually looks hot and readahead is
  //          squeezed into a handful of churn frames. Classic 2Q caps Am:
  //          once hot frames exceed half the shard, the LRU hot frame is
  //          evicted ahead of speculation.
  size_t best_a1 = shard->frames.size(), best_spec = best_a1,
         best_hot = best_a1;
  uint64_t used_a1 = 0, used_spec = 0, used_hot = 0;
  size_t hot_count = 0;
  for (size_t i = 0; i < shard->frames.size(); ++i) {
    if (shard->frames[i] == nullptr) continue;  // hole left by a steal
    Frame& f = *shard->frames[i];
    if (f.page_id == kInvalidPageId) continue;
    uint32_t uses = f.uses.load(std::memory_order_relaxed);
    if (uses >= 2) ++hot_count;
    if (f.pin_count.load(std::memory_order_acquire) > 0) continue;
    uint64_t used = f.last_used.load(std::memory_order_relaxed);
    if (uses == 1) {
      if (best_a1 == shard->frames.size() || used < used_a1) {
        best_a1 = i;
        used_a1 = used;
      }
    } else if (uses == 0) {
      if (best_spec == shard->frames.size() || used < used_spec) {
        best_spec = i;
        used_spec = used;
      }
    } else if (best_hot == shard->frames.size() || used < used_hot) {
      best_hot = i;
      used_hot = used;
    }
  }
  size_t best = best_a1;
  if (best == shard->frames.size()) {
    bool hot_over_budget = hot_count > shard->frames.size() / 2;
    best = hot_over_budget && best_hot != shard->frames.size() ? best_hot
                                                               : best_spec;
    if (best == shard->frames.size()) best = best_hot;
  }
  if (best == shard->frames.size()) {
    if (allow_steal) {
      Result<size_t> stolen = StealFrameLocked(shard);
      if (stolen.ok()) return stolen;
    }
    return Status::ResourceExhausted(
        StrCat("all ", shard->frames.size(), " buffer frames of shard are ",
               "pinned (", num_frames_, " frames, ", shards_.size(),
               " shards)"));
  }
  Frame& f = *shard->frames[best];
  if (f.dirty.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> io(io_mutex_);
    FOCUS_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.page.data));
    shard->stats.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
    f.dirty.store(false, std::memory_order_relaxed);
    shard->writeback_gen.fetch_add(1, std::memory_order_release);
  }
  shard->table.erase(f.page_id);
  f.page_id = kInvalidPageId;
  f.uses.store(0, std::memory_order_relaxed);
  shard->stats.evictions.fetch_add(1, std::memory_order_relaxed);
  return best;
}

Result<size_t> BufferPool::StealFrameLocked(Shard* shard) {
  for (auto& donor_owner : shards_) {
    Shard* donor = donor_owner.get();
    if (donor == shard) continue;
    // try_lock only: we hold `shard`'s latch, and a thread stealing in the
    // other direction holds `donor`'s, so blocking here could deadlock.
    std::unique_lock<std::shared_mutex> donor_latch(donor->latch,
                                                    std::try_to_lock);
    if (!donor_latch.owns_lock()) continue;
    // No nested stealing: the donor must give up one of its own frames
    // (free, or evicted here — which also write-backs and bumps the
    // donor's generation as any eviction does).
    Result<size_t> victim = GetVictimLocked(donor, /*allow_steal=*/false);
    if (!victim.ok()) continue;
    shard->frames.push_back(std::move(donor->frames[victim.value()]));
    return shard->frames.size() - 1;
  }
  return Status::ResourceExhausted("no shard has an evictable frame");
}

Result<Page*> BufferPool::FetchPage(PageId id) {
  Shard* shard = shards_[ShardOf(id)].get();
  shard->stats.fetches.fetch_add(1, std::memory_order_relaxed);
  bool first_spec_use = false;
  Page* page = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(shard->latch);
    if (auto it = shard->table.find(id); it != shard->table.end()) {
      page = TouchHitLocked(shard, shard->frames[it->second].get(),
                            &first_spec_use);
    }
  }
  if (page != nullptr) {
    // The hit pinned the frame, so extending readahead (which takes shard
    // latches and the io mutex) is safe latch-free here.
    if (first_spec_use) MaybeExtendReadahead(id);
    return page;
  }
  {
    std::unique_lock<std::shared_mutex> lock(shard->latch);
    // Another thread may have loaded the page between latch modes.
    if (auto it = shard->table.find(id); it != shard->table.end()) {
      page = TouchHitLocked(shard, shard->frames[it->second].get(),
                            &first_spec_use);
      lock.unlock();
      if (first_spec_use) MaybeExtendReadahead(id);
      return page;
    }
    shard->stats.misses.fetch_add(1, std::memory_order_relaxed);
    FOCUS_ASSIGN_OR_RETURN(size_t idx,
                           GetVictimLocked(shard, /*allow_steal=*/true));
    Frame& f = *shard->frames[idx];
    {
      std::lock_guard<std::mutex> io(io_mutex_);
      Status s = disk_->ReadPage(id, f.page.data);
      if (!s.ok()) {
        shard->free_frames.push_back(idx);
        return s;
      }
    }
    f.page_id = id;
    f.pin_count.store(1, std::memory_order_release);
    f.dirty.store(false, std::memory_order_relaxed);
    f.uses.store(1, std::memory_order_relaxed);
    f.last_used.store(
        shard->clock.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    shard->table[id] = idx;
    page = &f.page;
  }
#ifdef FOCUS_SANITIZE
  outstanding_pins_.fetch_add(1, std::memory_order_relaxed);
#endif
  // The fetched frame is pinned, so readahead (which takes other shard
  // latches) is safe to run latch-free here.
  MaybeAutoReadahead(id);
  return page;
}

Result<Page*> BufferPool::NewPage(PageId* out_id) {
  PageId id;
  {
    std::lock_guard<std::mutex> io(io_mutex_);
    FOCUS_ASSIGN_OR_RETURN(id, disk_->AllocatePage());
  }
  Shard* shard = shards_[ShardOf(id)].get();
  std::unique_lock<std::shared_mutex> lock(shard->latch);
  FOCUS_ASSIGN_OR_RETURN(size_t idx,
                         GetVictimLocked(shard, /*allow_steal=*/true));
  Frame& f = *shard->frames[idx];
  f.page.Zero();
  f.page_id = id;
  f.pin_count.store(1, std::memory_order_release);
  f.dirty.store(true, std::memory_order_relaxed);  // must reach disk even
                                                   // if never touched
  f.uses.store(1, std::memory_order_relaxed);
  f.last_used.store(shard->clock.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  shard->table[id] = idx;
#ifdef FOCUS_SANITIZE
  outstanding_pins_.fetch_add(1, std::memory_order_relaxed);
#endif
  *out_id = id;
  return &f.page;
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  Shard* shard = shards_[ShardOf(id)].get();
  std::shared_lock<std::shared_mutex> lock(shard->latch);
  auto it = shard->table.find(id);
  if (it == shard->table.end()) return;
  Frame& f = *shard->frames[it->second];
  if (dirty) f.dirty.store(true, std::memory_order_relaxed);
  int32_t prev = f.pin_count.load(std::memory_order_relaxed);
  while (prev > 0 &&
         !f.pin_count.compare_exchange_weak(prev, prev - 1,
                                            std::memory_order_acq_rel)) {
  }
#ifdef FOCUS_SANITIZE
  if (prev <= 0) {
    std::fprintf(stderr, "UnpinPage(%u) without a matching pin\n", id);
    std::abort();
  }
  outstanding_pins_.fetch_sub(1, std::memory_order_relaxed);
#endif
}

void BufferPool::Prefetch(PageId first, uint32_t n) {
  if (n == 0) return;
  {
    // The common mid-window probe: the previous batch already covers the
    // next page, so the iterator's per-advance call costs one map lookup.
    Shard* shard = shards_[ShardOf(first)].get();
    std::shared_lock<std::shared_mutex> lock(shard->latch);
    if (shard->table.count(first) != 0) return;
  }
  std::vector<char> buf;
  std::vector<uint64_t> gens(shards_.size());
  {
    std::lock_guard<std::mutex> io(io_mutex_);
    uint32_t device_pages = disk_->NumPages();
    if (first >= device_pages) return;
    n = std::min<uint32_t>(n, device_pages - first);
    buf.resize(static_cast<size_t>(n) * kPageSize);
    if (!disk_->ReadPages(first, n, buf.data()).ok()) return;
    // Sample each shard's write-back generation while still holding the
    // I/O mutex (write-backs advance it under the same mutex): any page
    // written back after this point makes its shard's installs below
    // stale, and the per-page check catches exactly those.
    for (size_t s = 0; s < shards_.size(); ++s) {
      gens[s] = shards_[s]->writeback_gen.load(std::memory_order_acquire);
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    PageId id = first + i;
    size_t shard_idx = ShardOf(id);
    Shard* shard = shards_[shard_idx].get();
    std::unique_lock<std::shared_mutex> lock(shard->latch);
    // Stale-read guard: if any of this shard's pages was written back
    // since the batch read, our buffered image of `id` may predate a
    // modify+evict cycle of the very same page — installing it would
    // resurrect the pre-modification version as a clean resident frame.
    // Write-backs require residency and happen under this exclusive
    // latch, so an unchanged generation here proves no such cycle
    // completed, and none can start before the install below is visible.
    if (shard->writeback_gen.load(std::memory_order_acquire) !=
        gens[shard_idx]) {
      continue;
    }
    if (shard->table.count(id) != 0) continue;
    auto victim = GetVictimLocked(shard, /*allow_steal=*/false);
    if (!victim.ok()) continue;  // shard fully pinned: drop the speculation
    Frame& f = *shard->frames[victim.value()];
    std::memcpy(f.page.data, buf.data() + static_cast<size_t>(i) * kPageSize,
                kPageSize);
    f.page_id = id;
    f.pin_count.store(0, std::memory_order_release);
    f.dirty.store(false, std::memory_order_relaxed);
    f.uses.store(0, std::memory_order_relaxed);  // evict-first until used
    f.last_used.store(shard->clock.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    shard->table[id] = victim.value();
    shard->stats.readahead_issued.fetch_add(1, std::memory_order_relaxed);
  }
}

void BufferPool::MaybeAutoReadahead(PageId missed) {
  if (!options_.auto_readahead || options_.readahead_window == 0) return;
  PageId start = kInvalidPageId;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    ++stream_tick_;
    Stream* match = nullptr;
    for (Stream& s : streams_) {
      // Tolerate small back-steps as well as forward gaps: access paths
      // whose pages interleave in one region (a heap and the index built
      // alongside it) look like one ascending stream with +-stride jitter,
      // and splitting them into per-page-parity streams would thrash the
      // table.
      if (s.run > 0 && missed + kStreamBack >= s.next &&
          missed < s.next + options_.readahead_window + kStreamGap) {
        match = &s;
        break;
      }
    }
    if (match != nullptr) {
      // The stream's consumer surfaced again (pages in between were served
      // by the last batch): extend it and, once confirmed, read ahead —
      // but never below the issued edge. Jitter misses inside an already
      // issued window (an evicted straggler) must not re-read the whole
      // window; only a miss at or past the edge advances it.
      match->next = std::max<PageId>(match->next, missed + 1);
      match->tick = stream_tick_;
      if (++match->run >= 2 && missed + kStreamLead >= match->issued) {
        start = std::max<PageId>(missed + 1, match->issued);
        match->issued = start + options_.readahead_window;
      }
    } else {
      Stream* victim = &streams_[0];
      for (Stream& s : streams_) {
        if (s.run == 0) {
          victim = &s;
          break;
        }
        if (s.tick < victim->tick) victim = &s;
      }
      victim->next = missed + 1;
      victim->issued = 0;
      victim->run = 1;
      victim->tick = stream_tick_;
    }
  }
  if (start != kInvalidPageId) Prefetch(start, options_.readahead_window);
}

void BufferPool::MaybeExtendReadahead(PageId used) {
  if (!options_.auto_readahead || options_.readahead_window == 0) return;
  PageId start = kInvalidPageId;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    for (Stream& s : streams_) {
      if (s.run < 2 || s.issued == 0) continue;
      if (used >= s.issued || s.issued - used > kStreamLead) continue;
      // The consumer is closing in on this stream's issued edge: read the
      // next window now, while the tail of the current one still feeds it.
      start = s.issued;
      s.issued = start + options_.readahead_window;
      s.next = std::max<PageId>(s.next, used + 1);
      s.tick = ++stream_tick_;
      break;
    }
  }
  if (start != kInvalidPageId) Prefetch(start, options_.readahead_window);
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->latch);
    for (auto& [page_id, idx] : shard->table) {
      Frame& f = *shard->frames[idx];
      if (!f.dirty.load(std::memory_order_relaxed)) continue;
      std::lock_guard<std::mutex> io(io_mutex_);
      FOCUS_RETURN_IF_ERROR(disk_->WritePage(page_id, f.page.data));
      shard->stats.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
      f.dirty.store(false, std::memory_order_relaxed);
      shard->writeback_gen.fetch_add(1, std::memory_order_release);
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->latch);
    for (auto it = shard->table.begin(); it != shard->table.end();) {
      Frame& f = *shard->frames[it->second];
      if (f.pin_count.load(std::memory_order_acquire) > 0) {
        ++it;
        continue;
      }
      if (f.dirty.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> io(io_mutex_);
        FOCUS_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.page.data));
        shard->stats.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
        f.dirty.store(false, std::memory_order_relaxed);
        shard->writeback_gen.fetch_add(1, std::memory_order_release);
      }
      shard->free_frames.push_back(it->second);
      f.page_id = kInvalidPageId;
      f.uses.store(0, std::memory_order_relaxed);
      it = shard->table.erase(it);
    }
  }
  return Status::OK();
}

BufferPool::Stats BufferPool::stats() const {
  Stats total;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Stats sh = shard_stats(s);
    total.fetches += sh.fetches;
    total.hits += sh.hits;
    total.misses += sh.misses;
    total.evictions += sh.evictions;
    total.dirty_writebacks += sh.dirty_writebacks;
    total.readahead_issued += sh.readahead_issued;
    total.readahead_used += sh.readahead_used;
  }
  return total;
}

BufferPool::Stats BufferPool::shard_stats(size_t i) const {
  const ShardStats& s = shards_[i]->stats;
  Stats out;
  out.fetches = s.fetches.load(std::memory_order_relaxed);
  out.hits = s.hits.load(std::memory_order_relaxed);
  out.misses = s.misses.load(std::memory_order_relaxed);
  out.evictions = s.evictions.load(std::memory_order_relaxed);
  out.dirty_writebacks = s.dirty_writebacks.load(std::memory_order_relaxed);
  out.readahead_issued = s.readahead_issued.load(std::memory_order_relaxed);
  out.readahead_used = s.readahead_used.load(std::memory_order_relaxed);
  return out;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    ShardStats& s = shard->stats;
    s.fetches.store(0, std::memory_order_relaxed);
    s.hits.store(0, std::memory_order_relaxed);
    s.misses.store(0, std::memory_order_relaxed);
    s.evictions.store(0, std::memory_order_relaxed);
    s.dirty_writebacks.store(0, std::memory_order_relaxed);
    s.readahead_issued.store(0, std::memory_order_relaxed);
    s.readahead_used.store(0, std::memory_order_relaxed);
  }
}

}  // namespace focus::storage
