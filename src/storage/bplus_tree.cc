#include "storage/bplus_tree.h"

#include <cstring>

#include "util/string_util.h"

namespace focus::storage {

// Node layout.
//   common:   [0] uint8 is_leaf, [2] uint16 count
//   leaf:     [4] uint32 next_leaf; entries at 8: {u64 key, u64 val} x count
//   internal: [4] uint32 child0;    entries at 8: {u64 key, u64 val,
//                                                  u32 child} x count
// Internal separators are composite (key, val); subtree child[i] holds
// composites in [sep_i, sep_{i+1}), with sep_0 = -inf.
namespace {
constexpr uint32_t kOffIsLeaf = 0;
constexpr uint32_t kOffCount = 2;
constexpr uint32_t kOffNextOrChild0 = 4;
constexpr uint32_t kEntriesStart = 8;
constexpr uint32_t kLeafStride = 16;
constexpr uint32_t kInternalStride = 20;
constexpr uint16_t kLeafCapacity = (kPageSize - kEntriesStart) / kLeafStride;
constexpr uint16_t kInternalCapacity =
    (kPageSize - kEntriesStart) / kInternalStride;

struct Entry {
  uint64_t key;
  uint64_t val;
};

inline bool LessEq(const Entry& a, uint64_t k, uint64_t v) {
  return a.key < k || (a.key == k && a.val <= v);
}
inline bool Less(const Entry& a, uint64_t k, uint64_t v) {
  return a.key < k || (a.key == k && a.val < v);
}

inline bool IsLeaf(const Page& p) { return p.Read<uint8_t>(kOffIsLeaf) != 0; }
inline uint16_t Count(const Page& p) { return p.Read<uint16_t>(kOffCount); }
inline void SetCount(Page* p, uint16_t c) { p->Write<uint16_t>(kOffCount, c); }

inline Entry LeafEntry(const Page& p, uint16_t i) {
  Entry e;
  e.key = p.Read<uint64_t>(kEntriesStart + kLeafStride * i);
  e.val = p.Read<uint64_t>(kEntriesStart + kLeafStride * i + 8);
  return e;
}
inline void SetLeafEntry(Page* p, uint16_t i, const Entry& e) {
  p->Write<uint64_t>(kEntriesStart + kLeafStride * i, e.key);
  p->Write<uint64_t>(kEntriesStart + kLeafStride * i + 8, e.val);
}

inline Entry InternalSep(const Page& p, uint16_t i) {
  Entry e;
  e.key = p.Read<uint64_t>(kEntriesStart + kInternalStride * i);
  e.val = p.Read<uint64_t>(kEntriesStart + kInternalStride * i + 8);
  return e;
}
inline PageId InternalChild(const Page& p, uint16_t i) {
  // child index i in [0, count]; child 0 lives in the header slot.
  if (i == 0) return p.Read<uint32_t>(kOffNextOrChild0);
  return p.Read<uint32_t>(kEntriesStart + kInternalStride * (i - 1) + 16);
}
inline void SetInternalEntry(Page* p, uint16_t i, const Entry& sep,
                             PageId child) {
  p->Write<uint64_t>(kEntriesStart + kInternalStride * i, sep.key);
  p->Write<uint64_t>(kEntriesStart + kInternalStride * i + 8, sep.val);
  p->Write<uint32_t>(kEntriesStart + kInternalStride * i + 16, child);
}

void InitLeaf(Page* p) {
  p->Zero();
  p->Write<uint8_t>(kOffIsLeaf, 1);
  p->Write<uint16_t>(kOffCount, 0);
  p->Write<uint32_t>(kOffNextOrChild0, kInvalidPageId);
}

void InitInternal(Page* p, PageId child0) {
  p->Zero();
  p->Write<uint8_t>(kOffIsLeaf, 0);
  p->Write<uint16_t>(kOffCount, 0);
  p->Write<uint32_t>(kOffNextOrChild0, child0);
}

// Number of separators <= (key, val): the child index to descend into.
uint16_t RouteChild(const Page& p, uint64_t key, uint64_t val) {
  uint16_t lo = 0, hi = Count(p);
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (LessEq(InternalSep(p, mid), key, val)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First leaf position with entry >= (key, val).
uint16_t LeafLowerBound(const Page& p, uint64_t key, uint64_t val) {
  uint16_t lo = 0, hi = Count(p);
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (Less(LeafEntry(p, mid), key, val)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}
}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  BPlusTree tree(pool);
  PageId id;
  FOCUS_ASSIGN_OR_RETURN(Page * page, pool->NewPage(&id));
  InitLeaf(page);
  pool->UnpinPage(id, /*dirty=*/true);
  tree.root_ = id;
  return tree;
}

BPlusTree BPlusTree::Attach(BufferPool* pool, PageId root, int height,
                            uint64_t num_entries) {
  BPlusTree tree(pool);
  tree.root_ = root;
  tree.height_ = height;
  tree.num_entries_ = num_entries;
  return tree;
}

Result<PageId> BPlusTree::FindLeaf(uint64_t key, uint64_t value,
                                   std::vector<Descent>* path) const {
  PageId current = root_;
  for (;;) {
    PageGuard guard(pool_, current);
    if (!guard.ok()) return guard.status();
    const Page& page = *guard.page();
    if (IsLeaf(page)) return current;
    uint16_t child_index = RouteChild(page, key, value);
    if (path != nullptr) path->push_back({current, child_index});
    current = InternalChild(page, child_index);
  }
}

Status BPlusTree::Insert(uint64_t key, uint64_t value) {
  std::vector<Descent> path;
  FOCUS_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key, value, &path));
  {
    PageGuard guard(pool_, leaf_id);
    if (!guard.ok()) return guard.status();
    Page* page = guard.page();
    uint16_t count = Count(*page);
    if (count < kLeafCapacity) {
      uint16_t pos = LeafLowerBound(*page, key, value);
      std::memmove(page->data + kEntriesStart + kLeafStride * (pos + 1),
                   page->data + kEntriesStart + kLeafStride * pos,
                   kLeafStride * (count - pos));
      SetLeafEntry(page, pos, {key, value});
      SetCount(page, count + 1);
      guard.MarkDirty();
      ++num_entries_;
      return Status::OK();
    }
  }
  // Leaf is full: split, then insert into whichever half owns the key.
  FOCUS_RETURN_IF_ERROR(SplitLeaf(leaf_id, &path));
  return Insert(key, value);
}

Status BPlusTree::SplitLeaf(PageId leaf_id, std::vector<Descent>* path) {
  PageId right_id;
  FOCUS_ASSIGN_OR_RETURN(Page * right, pool_->NewPage(&right_id));
  InitLeaf(right);

  PageGuard left_guard(pool_, leaf_id);
  if (!left_guard.ok()) {
    pool_->UnpinPage(right_id, true);
    return left_guard.status();
  }
  Page* left = left_guard.page();
  uint16_t count = Count(*left);
  uint16_t mid = count / 2;
  uint16_t moved = count - mid;
  std::memcpy(right->data + kEntriesStart,
              left->data + kEntriesStart + kLeafStride * mid,
              kLeafStride * moved);
  SetCount(right, moved);
  // Chain: right inherits left's successor.
  right->Write<uint32_t>(kOffNextOrChild0,
                         left->Read<uint32_t>(kOffNextOrChild0));
  left->Write<uint32_t>(kOffNextOrChild0, right_id);
  SetCount(left, mid);
  Entry sep = LeafEntry(*right, 0);
  left_guard.MarkDirty();
  left_guard.Release();
  pool_->UnpinPage(right_id, /*dirty=*/true);
  return InsertIntoParent(path, sep.key, sep.val, right_id);
}

Status BPlusTree::InsertIntoParent(std::vector<Descent>* path,
                                   uint64_t sep_key, uint64_t sep_value,
                                   PageId right_child) {
  if (path->empty()) {
    // The split node was the root: grow the tree by one level.
    PageId old_root = root_;
    PageId new_root_id;
    FOCUS_ASSIGN_OR_RETURN(Page * new_root, pool_->NewPage(&new_root_id));
    InitInternal(new_root, old_root);
    SetInternalEntry(new_root, 0, {sep_key, sep_value}, right_child);
    SetCount(new_root, 1);
    pool_->UnpinPage(new_root_id, /*dirty=*/true);
    root_ = new_root_id;
    ++height_;
    return Status::OK();
  }

  Descent descent = path->back();
  path->pop_back();
  PageGuard guard(pool_, descent.page_id);
  if (!guard.ok()) return guard.status();
  Page* node = guard.page();
  uint16_t count = Count(*node);
  if (count < kInternalCapacity) {
    uint16_t pos = descent.child_index;  // separator goes after that child
    std::memmove(node->data + kEntriesStart + kInternalStride * (pos + 1),
                 node->data + kEntriesStart + kInternalStride * pos,
                 kInternalStride * (count - pos));
    SetInternalEntry(node, pos, {sep_key, sep_value}, right_child);
    SetCount(node, count + 1);
    guard.MarkDirty();
    return Status::OK();
  }

  // Split the internal node. The middle separator moves up.
  PageId right_id;
  FOCUS_ASSIGN_OR_RETURN(Page * right, pool_->NewPage(&right_id));
  uint16_t mid = count / 2;
  Entry promoted = InternalSep(*node, mid);
  PageId right_child0 = InternalChild(*node, mid + 1);
  InitInternal(right, right_child0);
  uint16_t moved = count - mid - 1;
  std::memcpy(right->data + kEntriesStart,
              node->data + kEntriesStart + kInternalStride * (mid + 1),
              kInternalStride * moved);
  SetCount(right, moved);
  SetCount(node, mid);
  guard.MarkDirty();

  // Insert the pending (separator, right_child) into the correct half.
  Page* target;
  PageGuard* target_guard_ptr = nullptr;
  uint16_t target_count;
  bool goes_right = LessEq(promoted, sep_key, sep_value);
  if (goes_right) {
    target = right;
    target_count = Count(*right);
  } else {
    target = node;
    target_guard_ptr = &guard;
    target_count = Count(*node);
  }
  // Position: number of separators in the target <= pending separator.
  uint16_t pos = 0;
  while (pos < target_count &&
         LessEq(InternalSep(*target, pos), sep_key, sep_value)) {
    ++pos;
  }
  std::memmove(target->data + kEntriesStart + kInternalStride * (pos + 1),
               target->data + kEntriesStart + kInternalStride * pos,
               kInternalStride * (target_count - pos));
  SetInternalEntry(target, pos, {sep_key, sep_value}, right_child);
  SetCount(target, target_count + 1);
  if (target_guard_ptr != nullptr) target_guard_ptr->MarkDirty();

  guard.Release();
  pool_->UnpinPage(right_id, /*dirty=*/true);
  return InsertIntoParent(path, promoted.key, promoted.val, right_id);
}

Status BPlusTree::Remove(uint64_t key, uint64_t value) {
  FOCUS_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key, value, nullptr));
  PageGuard guard(pool_, leaf_id);
  if (!guard.ok()) return guard.status();
  Page* page = guard.page();
  uint16_t count = Count(*page);
  uint16_t pos = LeafLowerBound(*page, key, value);
  if (pos >= count) {
    return Status::NotFound(StrCat("key ", key, " value ", value));
  }
  Entry e = LeafEntry(*page, pos);
  if (e.key != key || e.val != value) {
    return Status::NotFound(StrCat("key ", key, " value ", value));
  }
  std::memmove(page->data + kEntriesStart + kLeafStride * pos,
               page->data + kEntriesStart + kLeafStride * (pos + 1),
               kLeafStride * (count - pos - 1));
  SetCount(page, count - 1);
  guard.MarkDirty();
  --num_entries_;
  return Status::OK();
}

Status BPlusTree::GetAll(uint64_t key, std::vector<uint64_t>* out) const {
  FOCUS_ASSIGN_OR_RETURN(Iterator it, Seek(key));
  uint64_t k, v;
  while (it.Next(&k, &v)) {
    if (k != key) break;
    out->push_back(v);
  }
  return it.status();
}

Result<BPlusTree::Iterator> BPlusTree::SeekPair(uint64_t key,
                                                uint64_t value) const {
  FOCUS_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key, value, nullptr));
  PageGuard guard(pool_, leaf_id);
  if (!guard.ok()) return guard.status();
  uint16_t pos = LeafLowerBound(*guard.page(), key, value);
  return Iterator(this, leaf_id, pos);
}

bool BPlusTree::Iterator::Next(uint64_t* key, uint64_t* value) {
  while (leaf_ != kInvalidPageId) {
    PageGuard guard(tree_->pool_, leaf_);
    if (!guard.ok()) {
      status_ = guard.status();
      return false;
    }
    const Page& page = *guard.page();
    if (index_ < Count(page)) {
      Entry e = LeafEntry(page, index_);
      *key = e.key;
      *value = e.val;
      ++index_;
      return true;
    }
    leaf_ = page.Read<uint32_t>(kOffNextOrChild0);
    index_ = 0;
    // Leaves split off each other in rough key order, so the sibling chain
    // is near-sequential on disk: stream a window ahead for range scans.
    tree_->pool_->MaybePrefetchChain(leaf_);
  }
  return false;
}

Status BPlusTree::CheckNode(PageId page_id, int depth, uint64_t lo_key,
                            uint64_t lo_val, bool has_lo, uint64_t hi_key,
                            uint64_t hi_val, bool has_hi,
                            int* leaf_depth) const {
  PageGuard guard(pool_, page_id);
  if (!guard.ok()) return guard.status();
  const Page& page = *guard.page();
  uint16_t count = Count(page);
  if (IsLeaf(page)) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal(StrCat("leaf depth mismatch at page ", page_id));
    }
    for (uint16_t i = 0; i < count; ++i) {
      Entry e = LeafEntry(page, i);
      if (i > 0) {
        Entry prev = LeafEntry(page, i - 1);
        if (!LessEq(prev, e.key, e.val)) {
          return Status::Internal(StrCat("unsorted leaf ", page_id));
        }
      }
      if (has_lo && Less(e, lo_key, lo_val)) {
        return Status::Internal(StrCat("leaf entry below bound in ", page_id));
      }
      if (has_hi && !Less(e, hi_key, hi_val)) {
        return Status::Internal(StrCat("leaf entry above bound in ", page_id));
      }
    }
    return Status::OK();
  }
  for (uint16_t i = 0; i + 1 < count; ++i) {
    Entry a = InternalSep(page, i);
    Entry b = InternalSep(page, i + 1);
    if (!Less(a, b.key, b.val)) {
      return Status::Internal(StrCat("unsorted separators in ", page_id));
    }
  }
  for (uint16_t i = 0; i <= count; ++i) {
    bool child_has_lo = has_lo || i > 0;
    Entry lo = i > 0 ? InternalSep(page, i - 1) : Entry{lo_key, lo_val};
    bool child_has_hi = has_hi || i < count;
    Entry hi = i < count ? InternalSep(page, i) : Entry{hi_key, hi_val};
    FOCUS_RETURN_IF_ERROR(CheckNode(InternalChild(page, i), depth + 1, lo.key,
                                    lo.val, child_has_lo, hi.key, hi.val,
                                    child_has_hi, leaf_depth));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  int leaf_depth = -1;
  return CheckNode(root_, 0, 0, 0, false, 0, 0, false, &leaf_depth);
}

}  // namespace focus::storage
