// Fixed-size pages — the unit of I/O between the disk manager and the
// buffer pool. 4 KiB matches the DB2 buffer-pool page size the paper's
// Figure 8(b) sweeps over ("Buffer Pool (x 4kB)").
#ifndef FOCUS_STORAGE_PAGE_H_
#define FOCUS_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace focus::storage {

inline constexpr uint32_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

// Raw page buffer. Layout within the buffer is owned by the consumer
// (heap file, B+-tree node, ...).
struct Page {
  char data[kPageSize];

  void Zero() { std::memset(data, 0, kPageSize); }

  // Typed accessors for reading/writing plain-old-data at a byte offset.
  template <typename T>
  T Read(uint32_t offset) const {
    T v;
    std::memcpy(&v, data + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void Write(uint32_t offset, const T& v) {
    std::memcpy(data + offset, &v, sizeof(T));
  }
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace focus::storage

#endif  // FOCUS_STORAGE_PAGE_H_
