#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/clock.h"
#include "util/string_util.h"

namespace focus::storage {

namespace {
// Busy-waits so simulated latency shows up in wall time like a real seek.
void SpinFor(double micros) {
  if (micros <= 0) return;
  Stopwatch sw;
  while (sw.ElapsedMicros() < micros) {
  }
}
}  // namespace

Status MemDiskManager::ReadPage(PageId id, char* out) {
  if (id >= pages_.size()) {
    return Status::OutOfRange(StrCat("read of unallocated page ", id));
  }
  SpinFor(options_.read_latency_us);
  std::memcpy(out, pages_[id]->data, kPageSize);
  ++stats_.reads;
  return Status::OK();
}

Status MemDiskManager::ReadPages(PageId first, uint32_t n, char* out) {
  if (n == 0) return Status::OK();
  if (static_cast<size_t>(first) + n > pages_.size()) {
    return Status::OutOfRange(
        StrCat("batched read of unallocated pages [", first, ", ",
               first + n, ")"));
  }
  SpinFor(options_.read_latency_us + (n - 1) * options_.transfer_latency_us);
  for (uint32_t i = 0; i < n; ++i) {
    std::memcpy(out + static_cast<size_t>(i) * kPageSize,
                pages_[first + i]->data, kPageSize);
  }
  stats_.reads += n;
  ++stats_.batch_reads;
  return Status::OK();
}

Status MemDiskManager::WritePage(PageId id, const char* in) {
  if (id >= pages_.size()) {
    return Status::OutOfRange(StrCat("write of unallocated page ", id));
  }
  SpinFor(options_.write_latency_us);
  std::memcpy(pages_[id]->data, in, kPageSize);
  ++stats_.writes;
  return Status::OK();
}

Result<PageId> MemDiskManager::AllocatePage() {
  auto page = std::make_unique<Page>();
  page->Zero();
  pages_.push_back(std::move(page));
  ++stats_.allocations;
  return static_cast<PageId>(pages_.size() - 1);
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path, Options options) {
  int flags = O_RDWR | O_CREAT;
  if (options.truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError(
        StrCat("open(", path, ") failed: ", std::strerror(errno)));
  }
  auto dm = std::unique_ptr<FileDiskManager>(new FileDiskManager(fd, path));
  if (!options.truncate) {
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      return Status::IOError(
          StrCat("lseek(", path, ") failed: ", std::strerror(errno)));
    }
    // A torn trailing fragment (crash mid-extend) is not a full page; it is
    // invisible to NumPages and overwritten by the next AllocatePage.
    dm->num_pages_ = static_cast<uint32_t>(size / kPageSize);
  }
  return dm;
}

FileDiskManager::~FileDiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDiskManager::ReadPage(PageId id, char* out) {
  if (id >= num_pages_) {
    return Status::OutOfRange(StrCat("read of unallocated page ", id));
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StrCat("pread page ", id, " returned ", n));
  }
  ++stats_.reads;
  return Status::OK();
}

Status FileDiskManager::ReadPages(PageId first, uint32_t n, char* out) {
  if (n == 0) return Status::OK();
  if (static_cast<uint64_t>(first) + n > num_pages_) {
    return Status::OutOfRange(
        StrCat("batched read of unallocated pages [", first, ", ",
               first + n, ")"));
  }
  size_t want = static_cast<size_t>(n) * kPageSize;
  ssize_t got = ::pread(fd_, out, want, static_cast<off_t>(first) * kPageSize);
  if (got != static_cast<ssize_t>(want)) {
    return Status::IOError(
        StrCat("pread of ", n, " pages at ", first, " returned ", got));
  }
  stats_.reads += n;
  ++stats_.batch_reads;
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const char* in) {
  if (id >= num_pages_) {
    return Status::OutOfRange(StrCat("write of unallocated page ", id));
  }
  ssize_t n = ::pwrite(fd_, in, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StrCat("pwrite page ", id, " returned ", n));
  }
  ++stats_.writes;
  return Status::OK();
}

Status FileDiskManager::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(
        StrCat("fdatasync(", path_, ") failed: ", std::strerror(errno)));
  }
  ++stats_.syncs;
  return Status::OK();
}

Result<PageId> FileDiskManager::AllocatePage() {
  Page zero;
  zero.Zero();
  PageId id = num_pages_;
  ssize_t n = ::pwrite(fd_, zero.data, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StrCat("extend to page ", id, " returned ", n));
  }
  ++num_pages_;
  ++stats_.allocations;
  return id;
}

}  // namespace focus::storage
