#include "storage/crash_fault_disk.h"

#include <algorithm>
#include <cstring>

#include "storage/page.h"

namespace focus::storage {

bool CrashFaultDiskManager::NextOpCrashes() {
  uint64_t op = plan_->op_count.fetch_add(1, std::memory_order_relaxed);
  if (op == plan_->crash_at_op) {
    plan_->crashed.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

Status CrashFaultDiskManager::Poisoned() const {
  return Status::IOError(kCrashMessage);
}

Status CrashFaultDiskManager::ReadPage(PageId id, char* out) {
  // Reads are not counted as crash points (they cannot tear state), but a
  // dead machine cannot read either.
  if (plan_->crashed.load(std::memory_order_acquire)) return Poisoned();
  return inner_->ReadPage(id, out);
}

Status CrashFaultDiskManager::ReadPages(PageId first, uint32_t n, char* out) {
  // Like ReadPage: batched reads are not crash points — they cannot tear
  // state, and keeping them uncounted means readahead does not shift the
  // crash-op numbering of the mutating workload being swept.
  if (plan_->crashed.load(std::memory_order_acquire)) return Poisoned();
  return inner_->ReadPages(first, n, out);
}

Status CrashFaultDiskManager::WritePage(PageId id, const char* in) {
  if (plan_->crashed.load(std::memory_order_acquire)) return Poisoned();
  if (NextOpCrashes()) {
    uint32_t keep = std::min(plan_->torn_bytes, kPageSize);
    if (keep > 0) {
      // Torn page: splice the prefix of the in-flight image onto the old
      // content and let that hybrid hit the platter before power dies.
      Page torn;
      if (inner_->ReadPage(id, torn.data).ok()) {
        std::memcpy(torn.data, in, keep);
        (void)inner_->WritePage(id, torn.data);
      }
    }
    return Poisoned();
  }
  return inner_->WritePage(id, in);
}

Result<PageId> CrashFaultDiskManager::AllocatePage() {
  if (plan_->crashed.load(std::memory_order_acquire)) return Poisoned();
  if (NextOpCrashes()) return Poisoned();
  return inner_->AllocatePage();
}

Status CrashFaultDiskManager::Sync() {
  if (plan_->crashed.load(std::memory_order_acquire)) return Poisoned();
  if (NextOpCrashes()) return Poisoned();
  return inner_->Sync();
}

}  // namespace focus::storage
