#include "storage/heap_file.h"

#include <cstring>

#include "util/string_util.h"

namespace focus::storage {

// Slotted page layout:
//   [0]  uint32 next_page_id
//   [4]  uint16 slot_count
//   [6]  uint16 free_end   (records occupy [free_end, kPageSize))
//   [8]  slot directory: per slot {uint16 offset, uint16 length}
// Tombstoned slots have offset == kTombstone.
namespace {
constexpr uint32_t kOffNext = 0;
constexpr uint32_t kOffSlotCount = 4;
constexpr uint32_t kOffFreeEnd = 6;
constexpr uint32_t kSlotDirStart = 8;
constexpr uint16_t kTombstone = 0xFFFF;

uint32_t SlotEntryOffset(uint16_t slot) { return kSlotDirStart + 4u * slot; }

void InitPage(Page* page) {
  page->Zero();
  page->Write<uint32_t>(kOffNext, kInvalidPageId);
  page->Write<uint16_t>(kOffSlotCount, 0);
  page->Write<uint16_t>(kOffFreeEnd, static_cast<uint16_t>(kPageSize));
}

uint32_t FreeSpace(const Page& page) {
  uint16_t slot_count = page.Read<uint16_t>(kOffSlotCount);
  uint16_t free_end = page.Read<uint16_t>(kOffFreeEnd);
  uint32_t dir_end = kSlotDirStart + 4u * slot_count;
  return free_end > dir_end ? free_end - dir_end : 0;
}
}  // namespace

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  HeapFile file(pool);
  PageId id;
  FOCUS_ASSIGN_OR_RETURN(Page * page, pool->NewPage(&id));
  InitPage(page);
  pool->UnpinPage(id, /*dirty=*/true);
  file.first_page_id_ = id;
  file.last_page_id_ = id;
  return file;
}

HeapFile HeapFile::Attach(BufferPool* pool, PageId first_page_id,
                          PageId last_page_id, uint64_t num_records) {
  HeapFile file(pool);
  file.first_page_id_ = first_page_id;
  file.last_page_id_ = last_page_id;
  file.num_records_ = num_records;
  return file;
}

Result<Rid> HeapFile::Insert(std::string_view record) {
  if (record.size() + 4 > kPageSize - kSlotDirStart) {
    return Status::InvalidArgument(
        StrCat("record of ", record.size(), " bytes exceeds page capacity"));
  }
  PageGuard guard(pool_, last_page_id_);
  if (!guard.ok()) return guard.status();
  Page* page = guard.page();
  if (FreeSpace(*page) < record.size() + 4) {
    // Chain a fresh page.
    PageId new_id;
    FOCUS_ASSIGN_OR_RETURN(Page * new_page, pool_->NewPage(&new_id));
    InitPage(new_page);
    page->Write<uint32_t>(kOffNext, new_id);
    guard.MarkDirty();
    guard.Release();
    pool_->UnpinPage(new_id, /*dirty=*/true);
    last_page_id_ = new_id;
    return Insert(record);
  }
  uint16_t slot_count = page->Read<uint16_t>(kOffSlotCount);
  uint16_t free_end = page->Read<uint16_t>(kOffFreeEnd);
  uint16_t offset = static_cast<uint16_t>(free_end - record.size());
  std::memcpy(page->data + offset, record.data(), record.size());
  page->Write<uint16_t>(SlotEntryOffset(slot_count), offset);
  page->Write<uint16_t>(SlotEntryOffset(slot_count) + 2,
                        static_cast<uint16_t>(record.size()));
  page->Write<uint16_t>(kOffSlotCount, static_cast<uint16_t>(slot_count + 1));
  page->Write<uint16_t>(kOffFreeEnd, offset);
  guard.MarkDirty();
  ++num_records_;
  return Rid{last_page_id_, slot_count};
}

Status HeapFile::Get(const Rid& rid, std::string* out) const {
  PageGuard guard(pool_, rid.page_id);
  if (!guard.ok()) return guard.status();
  const Page* page = guard.page();
  uint16_t slot_count = page->Read<uint16_t>(kOffSlotCount);
  if (rid.slot >= slot_count) {
    return Status::NotFound(StrCat("slot ", rid.slot, " out of range"));
  }
  uint16_t offset = page->Read<uint16_t>(SlotEntryOffset(rid.slot));
  uint16_t length = page->Read<uint16_t>(SlotEntryOffset(rid.slot) + 2);
  if (offset == kTombstone) {
    return Status::NotFound(StrCat("slot ", rid.slot, " deleted"));
  }
  out->assign(page->data + offset, length);
  return Status::OK();
}

Status HeapFile::Update(const Rid& rid, std::string_view record) {
  PageGuard guard(pool_, rid.page_id);
  if (!guard.ok()) return guard.status();
  Page* page = guard.page();
  uint16_t slot_count = page->Read<uint16_t>(kOffSlotCount);
  if (rid.slot >= slot_count) {
    return Status::NotFound(StrCat("slot ", rid.slot, " out of range"));
  }
  uint16_t offset = page->Read<uint16_t>(SlotEntryOffset(rid.slot));
  uint16_t length = page->Read<uint16_t>(SlotEntryOffset(rid.slot) + 2);
  if (offset == kTombstone) {
    return Status::NotFound(StrCat("slot ", rid.slot, " deleted"));
  }
  if (record.size() != length) {
    return Status::InvalidArgument(
        StrCat("in-place update size mismatch: ", record.size(), " vs ",
               length));
  }
  std::memcpy(page->data + offset, record.data(), record.size());
  guard.MarkDirty();
  return Status::OK();
}

Status HeapFile::Delete(const Rid& rid) {
  PageGuard guard(pool_, rid.page_id);
  if (!guard.ok()) return guard.status();
  Page* page = guard.page();
  uint16_t slot_count = page->Read<uint16_t>(kOffSlotCount);
  if (rid.slot >= slot_count) {
    return Status::NotFound(StrCat("slot ", rid.slot, " out of range"));
  }
  uint16_t offset = page->Read<uint16_t>(SlotEntryOffset(rid.slot));
  if (offset == kTombstone) {
    return Status::NotFound(StrCat("slot ", rid.slot, " already deleted"));
  }
  page->Write<uint16_t>(SlotEntryOffset(rid.slot), kTombstone);
  guard.MarkDirty();
  --num_records_;
  return Status::OK();
}

bool HeapFile::Iterator::Next(Rid* rid, std::string* record) {
  while (page_id_ != kInvalidPageId) {
    PageGuard guard(file_->pool_, page_id_);
    if (!guard.ok()) {
      status_ = guard.status();
      return false;
    }
    const Page* page = guard.page();
    uint16_t slot_count = page->Read<uint16_t>(kOffSlotCount);
    while (slot_ < slot_count) {
      uint16_t slot = slot_++;
      uint16_t offset = page->Read<uint16_t>(SlotEntryOffset(slot));
      if (offset == kTombstone) continue;
      uint16_t length = page->Read<uint16_t>(SlotEntryOffset(slot) + 2);
      record->assign(page->data + offset, length);
      *rid = Rid{page_id_, slot};
      return true;
    }
    page_id_ = page->Read<uint32_t>(kOffNext);
    slot_ = 0;
    // Chained heap pages are allocated roughly in order: stream a window
    // ahead so a full scan pays one seek per batch, not one per page.
    file_->pool_->MaybePrefetchChain(page_id_);
  }
  return false;
}

}  // namespace focus::storage
