#include "core/focus.h"

#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "distill/join_distiller.h"
#include "util/string_util.h"

namespace focus::core {

Result<DistillResult> CrawlSession::Distill(
    const distill::HitsOptions& options, int top_k) {
  if (!distill_ready_) {
    distill_tables_.link = db_->link_table();
    distill_tables_.crawl = db_->crawl_table();
    // The crawler may already have created HUBS/AUTH for periodic boosts.
    if (sql::Table* hubs = catalog_->GetTable("HUBS"); hubs != nullptr) {
      distill_tables_.hubs = hubs;
      distill_tables_.auth = catalog_->GetTable("AUTH");
    } else {
      FOCUS_RETURN_IF_ERROR(
          distill::CreateHubsAuthTables(catalog_.get(), &distill_tables_));
    }
    distill_ready_ = true;
  }
  FOCUS_RETURN_IF_ERROR(db_->RefreshEdgeWeights());
  distill::JoinDistiller distiller(distill_tables_);
  FOCUS_RETURN_IF_ERROR(distiller.Run(options));
  distiller.ExportMetrics(metrics_, name_);

  auto ranked_from = [&](const sql::Table* table)
      -> Result<std::vector<RankedPage>> {
    FOCUS_ASSIGN_OR_RETURN(auto scores, distill::CollectScores(table));
    std::unordered_map<uint64_t, distill::HubAuthScore> wrapped;
    for (const auto& [oid, s] : scores) wrapped[oid].hub = s;
    auto top = distill::HitsEngine::TopHubs(wrapped, top_k);
    std::vector<RankedPage> pages;
    pages.reserve(top.size());
    for (const auto& [oid, score] : top) {
      RankedPage page;
      page.oid = oid;
      page.score = score;
      FOCUS_ASSIGN_OR_RETURN(auto rec, db_->Lookup(oid));
      if (rec.has_value()) page.url = rec->url;
      pages.push_back(std::move(page));
    }
    return pages;
  };

  DistillResult result;
  FOCUS_ASSIGN_OR_RETURN(result.hubs, ranked_from(distill_tables_.hubs));
  FOCUS_ASSIGN_OR_RETURN(result.authorities,
                         ranked_from(distill_tables_.auth));
  return result;
}

Result<std::unique_ptr<FocusSystem>> FocusSystem::Create(
    taxonomy::Taxonomy tax, FocusOptions options,
    std::vector<webgraph::TopicAffinity> affinities) {
  options.web.seed = options.web.seed == 1 ? options.seed : options.web.seed;
  auto system = std::unique_ptr<FocusSystem>(
      new FocusSystem(std::move(tax), options));
  FOCUS_ASSIGN_OR_RETURN(
      webgraph::SimulatedWeb web,
      webgraph::SimulatedWeb::Generate(system->tax_, options.web,
                                       std::move(affinities)));
  system->web_ = std::make_unique<webgraph::SimulatedWeb>(std::move(web));
  return system;
}

Status FocusSystem::MarkGood(std::string_view topic_name) {
  FOCUS_ASSIGN_OR_RETURN(taxonomy::Cid cid, tax_.FindByName(topic_name));
  return tax_.MarkGood(cid);
}

Status FocusSystem::Train() {
  Rng rng(options_.seed ^ 0xD0C5EED5u);
  std::vector<classify::LabeledDocument> examples;
  uint64_t did = 1;
  for (taxonomy::Cid leaf : tax_.LeavesUnder(taxonomy::kRootCid)) {
    for (int i = 0; i < options_.examples_per_topic; ++i) {
      examples.push_back(classify::LabeledDocument{
          did++, leaf, web_->SampleDocumentForTopic(leaf, &rng)});
    }
  }
  classify::Trainer trainer(options_.trainer);
  FOCUS_ASSIGN_OR_RETURN(model_, trainer.Train(tax_, examples));
  classifier_ =
      std::make_unique<classify::HierarchicalClassifier>(&tax_, &model_);
  return Status::OK();
}

Result<std::unique_ptr<CrawlSession>> FocusSystem::NewCrawl(
    const std::vector<std::string>& seed_urls,
    const crawl::CrawlerOptions& crawler_options) {
  if (!trained()) {
    return Status::FailedPrecondition("call Train() before NewCrawl()");
  }
  auto session = std::unique_ptr<CrawlSession>(new CrawlSession());
  // Sessions share one registry; the pool label tells them apart.
  static std::atomic<uint64_t> next_session_id{1};
  std::string session_name =
      StrCat("session-", next_session_id.fetch_add(1));
  session->name_ = session_name;
  session->metrics_ = crawler_options.metrics_registry;
  storage::DiskManager* session_disk = nullptr;
  if (options_.session_db_dir.empty()) {
    session->disk_ = std::make_unique<storage::MemDiskManager>();
    session_disk = session->disk_.get();
  } else {
    // Durable session: data + log files behind the write-ahead log. A new
    // session always starts fresh (truncate); crash recovery reopens the
    // same files with FileDiskManager::Options{.truncate = false} and
    // WalDiskManager::Open (see tests/wal_recovery_test.cc).
    if (::mkdir(options_.session_db_dir.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return Status::IOError(StrCat("mkdir(", options_.session_db_dir,
                                    ") failed: ", std::strerror(errno)));
    }
    std::string base = StrCat(options_.session_db_dir, "/", session_name);
    FOCUS_ASSIGN_OR_RETURN(session->data_disk_,
                           storage::FileDiskManager::Open(base + ".db"));
    FOCUS_ASSIGN_OR_RETURN(session->log_disk_,
                           storage::FileDiskManager::Open(base + ".wal"));
    FOCUS_ASSIGN_OR_RETURN(
        session->wal_, storage::WalDiskManager::Open(
                           session->data_disk_.get(), session->log_disk_.get()));
    session->wal_->BindMetrics(crawler_options.metrics_registry,
                               session_name);
    session->wal_->BindEventLog(crawler_options.event_log);
    session_disk = session->wal_.get();
  }
  session->pool_ = std::make_unique<storage::BufferPool>(
      session_disk, options_.session_buffer_frames);
  session->pool_->BindMetrics(crawler_options.metrics_registry,
                              session_name);
  session->catalog_ = std::make_unique<sql::Catalog>(session->pool_.get());
  FOCUS_ASSIGN_OR_RETURN(crawl::CrawlDb db,
                         crawl::CrawlDb::Create(session->catalog_.get()));
  session->db_ = std::make_unique<crawl::CrawlDb>(std::move(db));
  if (session->wal_ != nullptr) session->db_->BindWal(session->wal_.get());
  session->evaluator_ =
      std::make_unique<crawl::ClassifierEvaluator>(classifier_.get());
  crawl::CrawlerOptions resolved = crawler_options;
  if (resolved.checkpoint_every_batches < 0) {
    resolved.checkpoint_every_batches = options_.checkpoint_every_batches;
  }
  session->crawler_ = std::make_unique<crawl::Crawler>(
      web_.get(), session->evaluator_.get(), session->db_.get(),
      session->catalog_.get(), resolved);
  for (const std::string& url : seed_urls) {
    FOCUS_RETURN_IF_ERROR(session->crawler_->AddSeed(url));
  }
  return session;
}

}  // namespace focus::core
