// Public API of the Focus resource-discovery system.
//
// A FocusSystem bundles the paper's full pipeline:
//   taxonomy + example documents -> trained hierarchical classifier
//   -> focused crawl sessions over a (simulated) web
//   -> relevance-weighted distillation of the crawl graph.
//
// Typical use (see examples/quickstart.cc):
//   taxonomy::Taxonomy tax = ...;            // build the topic tree
//   FocusOptions options;                    // seed, web, crawl parameters
//   auto system = FocusSystem::Create(std::move(tax), options, affinities);
//   system->MarkGood("cycling");
//   system->Train();
//   auto session = system->NewCrawl(seeds, crawl_options);
//   session->crawler().Crawl();
//   auto distilled = session->Distill({.iterations = 20, .rho = 0.1});
#ifndef FOCUS_CORE_FOCUS_H_
#define FOCUS_CORE_FOCUS_H_

#include <memory>
#include <string>
#include <vector>

#include "classify/hierarchical_classifier.h"
#include "classify/trainer.h"
#include "crawl/crawler.h"
#include "distill/hits.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "taxonomy/taxonomy.h"
#include "util/status.h"
#include "webgraph/simulated_web.h"

namespace focus::core {

struct FocusOptions {
  uint64_t seed = 1;
  webgraph::WebConfig web;
  classify::TrainerOptions trainer;
  // Held-out documents sampled per leaf topic as the example sets D(c).
  int examples_per_topic = 25;
  // Buffer-pool frames for each crawl session's database.
  size_t session_buffer_frames = 4096;
  // When non-empty, each crawl session's database lives on disk under this
  // directory (created if missing) as session-<id>.db / session-<id>.wal,
  // behind the write-ahead log: crawler batches become durable atomic
  // commits and the session survives storage-level crashes. Empty (the
  // default) keeps sessions in memory with no WAL — the fast test path.
  std::string session_db_dir;
  // Every Nth committed crawl batch is promoted to a full
  // CrawlDb::Checkpoint (overlay flush + log truncation), so crash
  // recovery replays at most one interval of commits. 0 disables periodic
  // checkpoints. Sessions inherit this unless their CrawlerOptions set
  // checkpoint_every_batches >= 0 explicitly.
  int checkpoint_every_batches = 64;
};

struct RankedPage {
  uint64_t oid = 0;
  std::string url;
  double score = 0;
};

struct DistillResult {
  std::vector<RankedPage> hubs;
  std::vector<RankedPage> authorities;
};

// One crawl and its relational state (its own buffer pool and catalog —
// sessions are independent, like separate crawler deployments).
class CrawlSession {
 public:
  crawl::Crawler& crawler() { return *crawler_; }
  crawl::CrawlDb& db() { return *db_; }
  sql::Catalog& catalog() { return *catalog_; }

  // Refreshes edge weights and runs the join distiller over the crawl
  // graph, returning the top-k hubs and authorities with their URLs.
  Result<DistillResult> Distill(const distill::HitsOptions& options,
                                int top_k = 20);

  // The LINK/HUBS/AUTH/CRAWL handles after a Distill() call (hubs/auth are
  // null before the first distillation).
  const distill::DistillTables& distill_tables() const {
    return distill_tables_;
  }

  // The session's write-ahead log, or nullptr for in-memory sessions.
  storage::WalDiskManager* wal() const { return wal_.get(); }

  // The session's sharded buffer pool (hit ratios, readahead counters,
  // per-shard stats).
  storage::BufferPool* pool() const { return pool_.get(); }

  // The label ("session-<id>") under which this session's storage and
  // distillation metrics are registered.
  const std::string& name() const { return name_; }

 private:
  friend class FocusSystem;
  CrawlSession() = default;

  std::string name_;
  obs::MetricsRegistry* metrics_ = nullptr;

  std::unique_ptr<storage::MemDiskManager> disk_;
  std::unique_ptr<storage::FileDiskManager> data_disk_;
  std::unique_ptr<storage::FileDiskManager> log_disk_;
  std::unique_ptr<storage::WalDiskManager> wal_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<sql::Catalog> catalog_;
  std::unique_ptr<crawl::CrawlDb> db_;
  std::unique_ptr<crawl::RelevanceEvaluator> evaluator_;
  std::unique_ptr<crawl::Crawler> crawler_;
  distill::DistillTables distill_tables_;
  bool distill_ready_ = false;
};

class FocusSystem {
 public:
  // Takes ownership of the taxonomy and generates the simulated web.
  static Result<std::unique_ptr<FocusSystem>> Create(
      taxonomy::Taxonomy tax, FocusOptions options,
      std::vector<webgraph::TopicAffinity> affinities = {});

  // Marks a topic good by name (C*); may be called multiple times.
  Status MarkGood(std::string_view topic_name);

  // Samples example documents for every leaf and trains the classifier.
  // Must be called after MarkGood (relevance depends on good topics only
  // at query time, so re-marking later is also fine).
  Status Train();

  // Starts a crawl session seeded with `seed_urls`.
  Result<std::unique_ptr<CrawlSession>> NewCrawl(
      const std::vector<std::string>& seed_urls,
      const crawl::CrawlerOptions& crawler_options);

  const taxonomy::Taxonomy& tax() const { return tax_; }
  taxonomy::Taxonomy* mutable_tax() { return &tax_; }
  webgraph::SimulatedWeb& web() { return *web_; }
  const classify::HierarchicalClassifier& classifier() const {
    return *classifier_;
  }
  const classify::ClassifierModel& model() const { return model_; }
  bool trained() const { return classifier_ != nullptr; }

 private:
  FocusSystem(taxonomy::Taxonomy tax, FocusOptions options)
      : tax_(std::move(tax)), options_(options) {}

  taxonomy::Taxonomy tax_;
  FocusOptions options_;
  std::unique_ptr<webgraph::SimulatedWeb> web_;
  classify::ClassifierModel model_;
  std::unique_ptr<classify::HierarchicalClassifier> classifier_;
};

}  // namespace focus::core

#endif  // FOCUS_CORE_FOCUS_H_
