#include "core/sample_taxonomy.h"

#include "util/logging.h"

namespace focus::core {

taxonomy::Taxonomy BuildSampleTaxonomy() {
  taxonomy::Taxonomy tax;
  struct Category {
    const char* name;
    const char* leaves[6];
  };
  static constexpr Category kCategories[] = {
      {"recreation",
       {"cycling", "gardening", "hiking", "fishing", "running", "chess"}},
      {"business",
       {"mutual_funds", "investing_general", "insurance", "banking",
        "startups", "real_estate"}},
      {"health",
       {"first_aid", "hiv_aids", "nutrition", "yoga", "pediatrics",
        "cardiology"}},
      {"computers",
       {"databases", "networking", "graphics", "compilers", "security",
        "machine_learning"}},
  };
  for (const Category& cat : kCategories) {
    auto parent = tax.AddTopic(taxonomy::kRootCid, cat.name);
    FOCUS_CHECK(parent.ok(), parent.status().ToString());
    for (const char* leaf : cat.leaves) {
      auto added = tax.AddTopic(parent.value(), leaf);
      FOCUS_CHECK(added.ok(), added.status().ToString());
    }
  }
  return tax;
}

}  // namespace focus::core
