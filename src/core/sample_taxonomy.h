// A Yahoo!-style master category list (§3.3): four top-level categories
// with six leaf topics each, including the topics the paper evaluates on
// (cycling, gardening, mutual funds, HIV/first aid).
//
// With 24 leaves, a page about nothing in particular carries ~1/24 prior
// mass per leaf, so irrelevant regions of the web measure near-zero
// soft-focus relevance — the regime the paper's giant taxonomy operated
// in.
#ifndef FOCUS_CORE_SAMPLE_TAXONOMY_H_
#define FOCUS_CORE_SAMPLE_TAXONOMY_H_

#include "taxonomy/taxonomy.h"

namespace focus::core {

// Builds the sample taxonomy. Never fails for the built-in topic list.
taxonomy::Taxonomy BuildSampleTaxonomy();

}  // namespace focus::core

#endif  // FOCUS_CORE_SAMPLE_TAXONOMY_H_
