// Crash-safe cross-shard link exchange.
//
// Source side: a crawler whose link expansion hits a URL owned by another
// shard journals the admission into its own CrawlDb's OUTBOX table
// (ExchangeEndpoint, a crawl::CrossShardLinkSink). The append rides the
// crawler's ordinary batch commit, so the admission is durable exactly
// when the LINK row that motivated it is.
//
// Delivery side: LinkExchange::Drain reads one (src, dst) queue above
// dst's durable watermark (XWMARK row for src), applies each message via
// Crawler::AdmitRemoteLink, then commits the admissions *and* the raised
// watermark as one dst batch. Crash anywhere in that window reverts dst
// to the previous watermark and the messages redeliver; admissions are
// idempotent (AddUrl dedups by oid, raises are monotone max), so
// redelivery converges instead of duplicating. Nothing is ever dropped:
// OUTBOX rows are only ever filtered by a watermark that was committed
// together with their application.
#ifndef FOCUS_DIST_LINK_EXCHANGE_H_
#define FOCUS_DIST_LINK_EXCHANGE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "crawl/crawl_db.h"
#include "crawl/crawler.h"
#include "dist/shard_router.h"
#include "obs/event_log.h"
#include "util/status.h"

namespace focus::dist {

// Adapts one shard's CrawlDb to the crawler's CrossShardLinkSink.
class ExchangeEndpoint final : public crawl::CrossShardLinkSink {
 public:
  ExchangeEndpoint(const ShardRouter* router, int shard_id)
      : router_(router), shard_id_(shard_id) {}

  // (Re)binds the shard's CrawlDb — called after every restart, when the
  // reopened store yields a new CrawlDb instance.
  void Bind(crawl::CrawlDb* db) { db_ = db; }

  bool Owns(std::string_view url) const override {
    return router_->ShardOfUrl(url) == shard_id_;
  }

  Status ExportLink(uint64_t src_oid, std::string_view dst_url,
                    double relevance, bool raise_if_known) override {
    return db_->AppendOutbox(router_->ShardOfUrl(dst_url), src_oid, dst_url,
                             relevance, raise_if_known);
  }

 private:
  const ShardRouter* router_;
  int shard_id_;
  crawl::CrawlDb* db_ = nullptr;
};

struct ExchangeStats {
  uint64_t delivered = 0;  // messages applied (replays included)
  uint64_t replayed = 0;   // redeliveries after a dst crash: seq at or
                           // below a high mark this process already read
  uint64_t batches = 0;    // committed (src,dst) delivery batches
};

class LinkExchange {
 public:
  explicit LinkExchange(int num_shards)
      : num_shards_(num_shards),
        read_high_(static_cast<size_t>(num_shards) * num_shards, 0) {}

  struct DrainResult {
    uint64_t delivered = 0;
    // Which side's storage failed, so the supervisor knows whom to
    // restart. kNone when status is OK.
    enum class FailedSide { kNone, kSource, kDest } failed = FailedSide::kNone;
    Status status;
  };

  // Delivers every pending src -> dst message (seq above dst's durable
  // watermark), committing dst once at the end.
  DrainResult Drain(crawl::CrawlDb* src_db, int src_shard,
                    crawl::CrawlDb* dst_db, crawl::Crawler* dst_crawler,
                    int dst_shard, obs::EventLog* dst_log);

  const ExchangeStats& stats() const { return stats_; }

 private:
  int num_shards_;
  // Highest seq this *process* has read per (src,dst) — survives dst
  // restarts (unlike dst's in-memory state), so a redelivery at or below
  // it is provably a replay of a batch whose commit died.
  std::vector<int64_t> read_high_;
  ExchangeStats stats_;
};

}  // namespace focus::dist

#endif  // FOCUS_DIST_LINK_EXCHANGE_H_
