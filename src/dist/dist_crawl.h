// Multi-shard distributed crawl supervisor (the paper's §3.6 scaling
// story: partition the URL space by server across crawler populations).
//
// DistCrawl owns N in-process shard groups. Each shard is a full crawl
// stack — WAL-backed CrawlDb, buffer pool, catalog, frontier, retry and
// breaker state, provenance event log — over its own pair of storage
// devices. A ShardRouter hash-partitions servers across shards; link
// discoveries that cross a shard boundary flow through the crash-safe
// LinkExchange (see link_exchange.h).
//
// The supervisor treats shard death as a first-class event: a shard whose
// storage starts failing (CrashFaultDiskManager poisoning) or whose
// scheduled ShardFaultPlan kill fires is torn down and rebooted from its
// durable state — WalDiskManager::Open replays the log, ResumeFromDb
// rebuilds the frontier, and the exchange endpoint is rebound. Because
// fetch outcomes are deterministic in (seed, url, attempt ordinal) and
// exchange delivery is exactly-once, the visited set at the fixpoint is
// bit-identical to the single-shard crawl no matter how many shards run or
// how often they die.
#ifndef FOCUS_DIST_DIST_CRAWL_H_
#define FOCUS_DIST_DIST_CRAWL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "crawl/crawl_db.h"
#include "crawl/crawler.h"
#include "crawl/relevance_evaluator.h"
#include "dist/link_exchange.h"
#include "dist/shard_router.h"
#include "distill/hits.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sql/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "util/status.h"
#include "webgraph/simulated_web.h"

namespace focus::dist {

// Error message of a scheduled (virtual-time) shard kill, the non-storage
// flavor of shard death. Storage-level deaths carry
// storage::kCrashMessage instead; IsShardDeath accepts both.
inline constexpr char kShardDeathMessage[] = "simulated shard death";

// True when `status` is a simulated shard death (scheduled kill or
// injected storage crash) rather than a genuine error.
bool IsShardDeath(const Status& status);

// Scheduled shard deaths at virtual crawl times. The crawler polls its
// shard's schedule at every step boundary (CrawlerOptions::interrupt);
// each kill fires exactly once, so the supervisor's restart survives.
class ShardFaultPlan {
 public:
  void KillAt(int shard, int64_t virtual_us) {
    kills_.push_back(Kill{shard, virtual_us, false});
  }

  // IOError(kShardDeathMessage) the first time `shard`'s clock reaches a
  // scheduled kill; OK otherwise.
  Status Check(int shard, int64_t now_us) {
    for (Kill& k : kills_) {
      if (k.fired || k.shard != shard || now_us < k.at_us) continue;
      k.fired = true;
      return Status::IOError(kShardDeathMessage);
    }
    return Status::OK();
  }

  int fired() const {
    int n = 0;
    for (const Kill& k : kills_) n += k.fired ? 1 : 0;
    return n;
  }

 private:
  struct Kill {
    int shard = 0;
    int64_t at_us = 0;
    bool fired = false;
  };
  std::vector<Kill> kills_;
};

// The storage devices backing one shard for one boot. Contents must
// survive across boots of the same shard (the provider hands back devices
// over the same backing store, possibly behind fresh fault decorators).
struct ShardDevices {
  storage::DiskManager* data = nullptr;
  storage::DiskManager* log = nullptr;
};

// Supplies `shard`'s devices for its `boot`-th life (0 = first). Tests
// interpose CrashFaultDiskManager here; the default provider backs every
// shard with a pair of DistCrawl-owned MemDiskManagers reused across
// boots.
using ShardStoreProvider =
    std::function<Result<ShardDevices>(int shard, int boot)>;

struct DistCrawlOptions {
  int num_shards = 1;
  // Per-shard crawler configuration. The distributed hooks (link_sink,
  // interrupt, event_log, metrics_registry) are overwritten per shard.
  crawl::CrawlerOptions crawler;
  // Buffer-pool frames per shard.
  size_t buffer_frames = 4096;
  // Per-shard buffer-pool tuning (sub-pool count, readahead); the default
  // auto-shards by size with readahead off.
  storage::BufferPool::Options pool_options;
  // Per-shard WAL tuning (group-commit linger, log-segment size and
  // recycling threshold, end-of-recovery checkpoint).
  storage::WalDiskManager::Options wal_options;
  // Storage for each shard; nullptr = internal in-memory devices.
  ShardStoreProvider store_provider;
  // Scheduled kills; borrowed, may be nullptr. Shared with the test so it
  // can assert every kill fired.
  ShardFaultPlan* fault_plan = nullptr;
  // Give every shard its own provenance EventLog (stamped with its shard
  // id; events survive restarts).
  bool enable_event_logs = false;
  size_t event_ring_capacity = 65536;
  // Registry for the focus_shard_* metric families; nullptr = process
  // global.
  obs::MetricsRegistry* metrics_registry = nullptr;
  // Supervisor limits: total restarts across all shards, and fixpoint
  // rounds, before giving up with an error (guards against a fault plan
  // that kills faster than recovery progresses).
  int max_restarts = 64;
  int max_rounds = 1024;
};

// One hub/authority score vector from the global distillation, sorted by
// oid ascending.
struct GlobalDistillResult {
  std::vector<std::pair<uint64_t, double>> hubs;
  std::vector<std::pair<uint64_t, double>> auths;
  uint64_t merged_pages = 0;
  uint64_t merged_links = 0;
};

// One (src, dst) exchange queue's durable state, for the zero-lost /
// zero-duplicated verification after a run.
struct WatermarkAudit {
  int src_shard = 0;
  int dst_shard = 0;
  int64_t outbox_high = 0;  // highest durable seq src assigned to dst
  int64_t watermark = 0;    // dst's durable applied watermark for src
  int64_t pending = 0;      // messages above the watermark (0 at fixpoint)
};

class DistCrawl {
 public:
  // `web` and `evaluator` are shared by all shards (both are borrowed and
  // judged/fetched deterministically, so sharing is safe — shards crawl
  // sequentially under the supervisor).
  static Result<std::unique_ptr<DistCrawl>> Create(
      webgraph::SimulatedWeb* web, crawl::RelevanceEvaluator* evaluator,
      DistCrawlOptions options);
  ~DistCrawl();

  DistCrawl(const DistCrawl&) = delete;
  DistCrawl& operator=(const DistCrawl&) = delete;

  // Routes the seed to its owner shard and commits it durably (a seed
  // must survive a shard death that precedes the first batch).
  Status AddSeed(std::string_view url);

  // Supervisor loop: rounds of (crawl every live shard to stagnation,
  // drain every exchange queue), restarting dead shards as deaths
  // surface, until a round makes no progress — no fetch attempts, no
  // deliveries, no restarts. At that point every frontier is dry and
  // every exchange watermark has caught up with its outbox.
  Status RunToFixpoint();

  int num_shards() const { return router_.num_shards(); }
  const ShardRouter& router() const { return router_; }
  crawl::Crawler* crawler(int shard) { return shards_[shard]->crawler.get(); }
  crawl::CrawlDb* db(int shard) const { return shards_[shard]->db.get(); }
  obs::EventLog* event_log(int shard) { return shards_[shard]->log.get(); }
  const ExchangeStats& exchange_stats() const { return exchange_.stats(); }
  int restarts(int shard) const { return shards_[shard]->restarts; }
  int total_restarts() const;

  // Union of visited pages across shards: url -> judged relevance.
  Result<std::map<std::string, double>> VisitedRelevance() const;
  // Fraction of visited pages with relevance >= threshold (the paper's
  // harvest rate), over the union.
  Result<double> HarvestRate(double threshold) const;

  // The global distillation round: merges every shard's CRAWL and LINK
  // tables into one fresh in-memory database (rows in oid order, edges in
  // (src, dst) order — a canonical form independent of shard count),
  // refreshes edge weights and runs the join distiller over the union.
  // Single-shard crawls run through the exact same merge path, so the
  // N-shard scores are bit-identical to the 1-shard scores.
  Result<GlobalDistillResult> GlobalDistill(
      const distill::HitsOptions& hits) const;

  // Durable exchange state for every (src, dst) pair.
  Result<std::vector<WatermarkAudit>> AuditExchange() const;

 private:
  struct Shard {
    // Declaration order is teardown order in reverse: the crawler dies
    // before the endpoint/log it borrows, the db before its catalog/pool,
    // the pool before the WAL it writes through.
    std::unique_ptr<storage::WalDiskManager> wal;
    std::unique_ptr<storage::BufferPool> pool;
    std::unique_ptr<sql::Catalog> catalog;
    std::unique_ptr<crawl::CrawlDb> db;
    std::unique_ptr<obs::EventLog> log;  // survives restarts
    std::unique_ptr<ExchangeEndpoint> endpoint;
    std::unique_ptr<crawl::Crawler> crawler;
    int boots = 0;     // completed BootShard calls
    int restarts = 0;  // deaths recovered from
  };

  DistCrawl(webgraph::SimulatedWeb* web, crawl::RelevanceEvaluator* evaluator,
            DistCrawlOptions options);

  // (Re)builds shard `s`'s stack over provider devices for its next boot:
  // WAL recovery, CrawlDb::Open, exchange tables, crawler, and — past the
  // first boot — ResumeFromDb plus endpoint rebinding.
  Status BootShard(int s);
  // Tears down and reboots a dead shard, recording the death/restart
  // events and enforcing max_restarts.
  Status RestartShard(int s, const Status& death);
  // Publishes the focus_shard_* gauges for the current state.
  void PublishMetrics();

  webgraph::SimulatedWeb* web_;
  crawl::RelevanceEvaluator* evaluator_;
  DistCrawlOptions options_;
  ShardRouter router_;
  LinkExchange exchange_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Backing stores for the default provider (reused across boots).
  struct DefaultDevices {
    std::unique_ptr<storage::MemDiskManager> data;
    std::unique_ptr<storage::MemDiskManager> log;
  };
  std::vector<DefaultDevices> default_devices_;
};

}  // namespace focus::dist

#endif  // FOCUS_DIST_DIST_CRAWL_H_
