#include "dist/dist_crawl.h"

#include <algorithm>
#include <tuple>

#include "distill/distiller.h"
#include "distill/join_distiller.h"
#include "storage/crash_fault_disk.h"

namespace focus::dist {

bool IsShardDeath(const Status& status) {
  if (status.ok()) return false;
  const std::string& m = status.message();
  return m.find(storage::kCrashMessage) != std::string::npos ||
         m.find(kShardDeathMessage) != std::string::npos;
}

DistCrawl::DistCrawl(webgraph::SimulatedWeb* web,
                     crawl::RelevanceEvaluator* evaluator,
                     DistCrawlOptions options)
    : web_(web),
      evaluator_(evaluator),
      options_(std::move(options)),
      router_(options_.num_shards),
      exchange_(options_.num_shards) {}

DistCrawl::~DistCrawl() = default;

Result<std::unique_ptr<DistCrawl>> DistCrawl::Create(
    webgraph::SimulatedWeb* web, crawl::RelevanceEvaluator* evaluator,
    DistCrawlOptions options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  auto dc = std::unique_ptr<DistCrawl>(
      new DistCrawl(web, evaluator, std::move(options)));
  int n = dc->options_.num_shards;
  if (!dc->options_.store_provider) {
    dc->default_devices_.resize(static_cast<size_t>(n));
    DistCrawl* self = dc.get();
    dc->options_.store_provider = [self](int shard,
                                         int /*boot*/) -> Result<ShardDevices> {
      DefaultDevices& d = self->default_devices_[static_cast<size_t>(shard)];
      if (d.data == nullptr) {
        d.data = std::make_unique<storage::MemDiskManager>();
        d.log = std::make_unique<storage::MemDiskManager>();
      }
      return ShardDevices{d.data.get(), d.log.get()};
    };
  }
  for (int s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    if (dc->options_.enable_event_logs) {
      shard->log = std::make_unique<obs::EventLog>();
      shard->log->Enable(dc->options_.event_ring_capacity);
      shard->log->SetShardId(s);
    }
    if (n > 1) {
      shard->endpoint = std::make_unique<ExchangeEndpoint>(&dc->router_, s);
    }
    dc->shards_.push_back(std::move(shard));
  }
  for (int s = 0; s < n; ++s) {
    FOCUS_RETURN_IF_ERROR(dc->BootShard(s));
  }
  dc->PublishMetrics();
  return dc;
}

Status DistCrawl::BootShard(int s) {
  Shard& sh = *shards_[static_cast<size_t>(s)];
  // Teardown in dependency order; the durable state lives in the provider's
  // devices, exactly like disk platters surviving a power cut.
  sh.crawler.reset();
  sh.db.reset();
  sh.catalog.reset();
  sh.pool.reset();
  sh.wal.reset();
  FOCUS_ASSIGN_OR_RETURN(ShardDevices dev,
                         options_.store_provider(s, sh.boots));
  if (dev.data == nullptr || dev.log == nullptr) {
    return Status::InvalidArgument("store provider returned a null device");
  }
  // Recovery: replay the shard's redo log to its last durable batch.
  FOCUS_ASSIGN_OR_RETURN(
      sh.wal,
      storage::WalDiskManager::Open(dev.data, dev.log, options_.wal_options));
  if (sh.log != nullptr) sh.wal->BindEventLog(sh.log.get());
  sh.pool = std::make_unique<storage::BufferPool>(
      sh.wal.get(), options_.buffer_frames, options_.pool_options);
  sh.catalog = std::make_unique<sql::Catalog>(sh.pool.get());
  FOCUS_ASSIGN_OR_RETURN(crawl::CrawlDb db,
                         crawl::CrawlDb::Open(sh.catalog.get(), sh.wal.get()));
  sh.db = std::make_unique<crawl::CrawlDb>(std::move(db));
  FOCUS_RETURN_IF_ERROR(sh.db->EnableExchange());
  if (sh.endpoint != nullptr) sh.endpoint->Bind(sh.db.get());

  crawl::CrawlerOptions copts = options_.crawler;
  copts.event_log = sh.log.get();
  copts.metrics_registry = options_.metrics_registry;
  copts.link_sink = sh.endpoint.get();
  if (options_.fault_plan != nullptr) {
    ShardFaultPlan* plan = options_.fault_plan;
    copts.interrupt = [plan, s](int64_t now_us) {
      return plan->Check(s, now_us);
    };
  }
  sh.crawler = std::make_unique<crawl::Crawler>(web_, evaluator_, sh.db.get(),
                                                sh.catalog.get(), copts);
  if (sh.boots > 0) {
    FOCUS_RETURN_IF_ERROR(sh.crawler->ResumeFromDb());
  }
  ++sh.boots;
  return Status::OK();
}

Status DistCrawl::RestartShard(int s, const Status& death) {
  Shard& sh = *shards_[static_cast<size_t>(s)];
  if (sh.log != nullptr) {
    // value 1 = storage-level death (poisoned device), 0 = scheduled kill.
    double storage_death =
        death.message().find(storage::kCrashMessage) != std::string::npos
            ? 1.0
            : 0.0;
    sh.log->Record(obs::CrawlEventType::kShardDeath, /*oid=*/-1,
                   /*parent_oid=*/-1, /*sid=*/-1, /*virtual_us=*/-1,
                   storage_death, /*aux=*/sh.boots - 1);
  }
  if (total_restarts() >= options_.max_restarts) {
    return Status::Internal("shard restart budget exhausted");
  }
  ++sh.restarts;
  FOCUS_RETURN_IF_ERROR(BootShard(s));
  if (sh.log != nullptr) {
    sh.log->Record(obs::CrawlEventType::kShardRestart, /*oid=*/-1,
                   /*parent_oid=*/-1, /*sid=*/-1, /*virtual_us=*/-1,
                   /*value=*/static_cast<double>(sh.crawler->frontier()->size()),
                   /*aux=*/sh.boots - 1);
  }
  return Status::OK();
}

Status DistCrawl::AddSeed(std::string_view url) {
  int s = router_.ShardOfUrl(url);
  Shard& sh = *shards_[static_cast<size_t>(s)];
  FOCUS_RETURN_IF_ERROR(sh.crawler->AddSeed(url));
  // A seed must survive a shard death that precedes the first crawl batch.
  return sh.db->Commit();
}

Status DistCrawl::RunToFixpoint() {
  int n = num_shards();
  for (int round = 0; round < options_.max_rounds; ++round) {
    bool progress = false;
    for (int s = 0; s < n; ++s) {
      Shard& sh = *shards_[static_cast<size_t>(s)];
      uint64_t before = sh.crawler->stats().attempts;
      Status st = sh.crawler->Crawl();
      if (!st.ok()) {
        if (!IsShardDeath(st)) return st;
        FOCUS_RETURN_IF_ERROR(RestartShard(s, st));
        progress = true;
        continue;
      }
      if (sh.crawler->stats().attempts != before) progress = true;
    }
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        LinkExchange::DrainResult r = exchange_.Drain(
            shards_[static_cast<size_t>(src)]->db.get(), src,
            shards_[static_cast<size_t>(dst)]->db.get(),
            shards_[static_cast<size_t>(dst)]->crawler.get(), dst,
            shards_[static_cast<size_t>(dst)]->log.get());
        if (!r.status.ok()) {
          if (!IsShardDeath(r.status)) return r.status;
          int dead =
              r.failed == LinkExchange::DrainResult::FailedSide::kSource
                  ? src
                  : dst;
          FOCUS_RETURN_IF_ERROR(RestartShard(dead, r.status));
          progress = true;
          continue;
        }
        if (r.delivered > 0) progress = true;
      }
    }
    PublishMetrics();
    // A full round with no attempts, no deliveries and no restarts means
    // every frontier is dry and every watermark equals its outbox tail.
    if (!progress) return Status::OK();
  }
  return Status::Internal("distributed crawl did not reach a fixpoint");
}

int DistCrawl::total_restarts() const {
  int total = 0;
  for (const auto& sh : shards_) total += sh->restarts;
  return total;
}

Result<std::map<std::string, double>> DistCrawl::VisitedRelevance() const {
  std::map<std::string, double> out;
  for (const auto& sh : shards_) {
    auto it = sh->db->crawl_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      crawl::CrawlRecord rec = crawl::CrawlDb::RecordFromTuple(row);
      if (rec.visited) out[rec.url] = rec.relevance;
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  return out;
}

Result<double> DistCrawl::HarvestRate(double threshold) const {
  FOCUS_ASSIGN_OR_RETURN(auto visited, VisitedRelevance());
  if (visited.empty()) return 0.0;
  uint64_t relevant = 0;
  for (const auto& [url, relevance] : visited) {
    if (relevance >= threshold) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(visited.size());
}

Result<GlobalDistillResult> DistCrawl::GlobalDistill(
    const distill::HitsOptions& hits) const {
  // A fresh in-memory database receives the union in canonical order
  // (rows by oid, edges by (src, dst)), so the merged physical state — and
  // therefore every floating-point operation of the distillation — is
  // independent of the shard count and of delivery interleavings.
  storage::MemDiskManager disk;
  storage::BufferPool pool(&disk, options_.buffer_frames);
  sql::Catalog catalog(&pool);
  FOCUS_ASSIGN_OR_RETURN(crawl::CrawlDb mdb, crawl::CrawlDb::Create(&catalog));

  std::map<uint64_t, crawl::CrawlRecord> rows;
  for (const auto& sh : shards_) {
    auto it = sh->db->crawl_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      crawl::CrawlRecord rec = crawl::CrawlDb::RecordFromTuple(row);
      auto [mit, inserted] = rows.emplace(rec.oid, rec);
      if (inserted) continue;
      // Ownership partitions CRAWL cleanly, but merge defensively: a
      // visited row wins; between unvisited rows the best estimate wins.
      if (rec.visited && !mit->second.visited) {
        mit->second = rec;
      } else if (!rec.visited && !mit->second.visited) {
        mit->second.relevance = std::max(mit->second.relevance, rec.relevance);
      }
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  for (const auto& [oid, rec] : rows) {
    FOCUS_RETURN_IF_ERROR(mdb.AddUrl(rec.url, rec.relevance, rec.serverload));
    if (rec.visited) {
      FOCUS_RETURN_IF_ERROR(
          mdb.RecordVisit(oid, rec.relevance, rec.kcid, rec.lastvisited));
    }
  }

  using Edge = std::tuple<int64_t, int32_t, int64_t, int32_t>;
  std::vector<Edge> edges;
  for (const auto& sh : shards_) {
    auto it = sh->db->link_table()->Scan();
    storage::Rid rid;
    sql::Tuple row;
    while (it.Next(&rid, &row)) {
      edges.emplace_back(row.Get(0).AsInt64(), row.Get(1).AsInt32(),
                         row.Get(2).AsInt64(), row.Get(3).AsInt32());
    }
    FOCUS_RETURN_IF_ERROR(it.status());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (const Edge& e : edges) {
    FOCUS_RETURN_IF_ERROR(
        mdb.link_table()
            ->Insert(sql::Tuple({sql::Value::Int64(std::get<0>(e)),
                                 sql::Value::Int32(std::get<1>(e)),
                                 sql::Value::Int64(std::get<2>(e)),
                                 sql::Value::Int32(std::get<3>(e)),
                                 sql::Value::Double(0.0),
                                 sql::Value::Double(0.0)}))
            .status());
  }

  distill::DistillTables tables;
  tables.link = mdb.link_table();
  tables.crawl = mdb.crawl_table();
  FOCUS_RETURN_IF_ERROR(distill::CreateHubsAuthTables(&catalog, &tables));
  FOCUS_RETURN_IF_ERROR(mdb.RefreshEdgeWeights());
  distill::JoinDistiller distiller(tables);
  FOCUS_RETURN_IF_ERROR(distiller.Run(hits));

  GlobalDistillResult out;
  out.merged_pages = rows.size();
  out.merged_links = edges.size();
  FOCUS_ASSIGN_OR_RETURN(auto hub_scores,
                         distill::CollectScores(tables.hubs));
  FOCUS_ASSIGN_OR_RETURN(auto auth_scores,
                         distill::CollectScores(tables.auth));
  out.hubs.assign(hub_scores.begin(), hub_scores.end());
  out.auths.assign(auth_scores.begin(), auth_scores.end());
  std::sort(out.hubs.begin(), out.hubs.end());
  std::sort(out.auths.begin(), out.auths.end());
  return out;
}

Result<std::vector<WatermarkAudit>> DistCrawl::AuditExchange() const {
  std::vector<WatermarkAudit> out;
  int n = num_shards();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      WatermarkAudit a;
      a.src_shard = src;
      a.dst_shard = dst;
      FOCUS_ASSIGN_OR_RETURN(
          auto msgs,
          shards_[static_cast<size_t>(src)]->db->ReadOutboxAfter(dst, 0));
      FOCUS_ASSIGN_OR_RETURN(
          a.watermark,
          shards_[static_cast<size_t>(dst)]->db->ExchangeWatermark(src));
      for (const crawl::ExchangeLink& msg : msgs) {
        a.outbox_high = std::max(a.outbox_high, msg.seq);
        if (msg.seq > a.watermark) ++a.pending;
      }
      out.push_back(a);
    }
  }
  return out;
}

void DistCrawl::PublishMetrics() {
  obs::MetricsRegistry* reg =
      obs::MetricsRegistry::OrGlobal(options_.metrics_registry);
  reg->SetHelp("focus_shard_frontier_depth",
               "Live frontier entries per crawl shard");
  reg->SetHelp("focus_shard_exchange_queue_depth",
               "Outbox messages not yet applied by their owner shard");
  reg->SetHelp("focus_shard_restarts",
               "Shard deaths this supervisor has recovered from");
  reg->SetHelp("focus_shard_exchange_delivered",
               "Cross-shard link admissions applied (replays included)");
  reg->SetHelp("focus_shard_exchange_replays",
               "Redelivered admissions after a destination-shard crash");
  reg->SetHelp("focus_shard_exchange_batches",
               "Committed exchange delivery batches");

  int n = num_shards();
  std::vector<int64_t> depth(static_cast<size_t>(n), 0);
  // Best-effort: the audit scans shard tables, which is safe here (the
  // supervisor publishes between rounds, never mid-crawl) but can fail on
  // a currently-poisoned device — the depth gauges then keep their last
  // published value.
  if (auto audit = AuditExchange(); audit.ok()) {
    for (const WatermarkAudit& a : *audit) {
      depth[static_cast<size_t>(a.src_shard)] += a.pending;
    }
    for (int s = 0; s < n; ++s) {
      reg->GetGauge("focus_shard_exchange_queue_depth",
                    {{"shard", std::to_string(s)}})
          ->Set(static_cast<double>(depth[static_cast<size_t>(s)]));
    }
  }
  for (int s = 0; s < n; ++s) {
    const Shard& sh = *shards_[static_cast<size_t>(s)];
    obs::Labels labels{{"shard", std::to_string(s)}};
    reg->GetGauge("focus_shard_frontier_depth", labels)
        ->Set(static_cast<double>(sh.crawler->frontier()->size()));
    reg->GetGauge("focus_shard_restarts", labels)
        ->Set(static_cast<double>(sh.restarts));
  }
  const ExchangeStats& stats = exchange_.stats();
  reg->GetGauge("focus_shard_exchange_delivered")
      ->Set(static_cast<double>(stats.delivered));
  reg->GetGauge("focus_shard_exchange_replays")
      ->Set(static_cast<double>(stats.replayed));
  reg->GetGauge("focus_shard_exchange_batches")
      ->Set(static_cast<double>(stats.batches));
}

}  // namespace focus::dist
