#include "dist/link_exchange.h"

#include <algorithm>

namespace focus::dist {

LinkExchange::DrainResult LinkExchange::Drain(
    crawl::CrawlDb* src_db, int src_shard, crawl::CrawlDb* dst_db,
    crawl::Crawler* dst_crawler, int dst_shard, obs::EventLog* dst_log) {
  DrainResult result;
  auto fail = [&result](DrainResult::FailedSide side, Status status) {
    result.failed = side;
    result.status = std::move(status);
    return result;
  };

  Result<int64_t> watermark = dst_db->ExchangeWatermark(src_shard);
  if (!watermark.ok()) {
    return fail(DrainResult::FailedSide::kDest, watermark.status());
  }
  Result<std::vector<crawl::ExchangeLink>> pending =
      src_db->ReadOutboxAfter(dst_shard, *watermark);
  if (!pending.ok()) {
    return fail(DrainResult::FailedSide::kSource, pending.status());
  }
  if (pending->empty()) return result;

  int64_t& high =
      read_high_[static_cast<size_t>(src_shard) * num_shards_ + dst_shard];
  // Replays are counted against the read mark, not the durable watermark:
  // a message this process already *read* but whose delivery batch died
  // before its commit comes back here with the watermark unchanged — the
  // redelivery the protocol promises.
  for (const crawl::ExchangeLink& msg : *pending) {
    if (msg.seq <= high) ++stats_.replayed;
  }
  int64_t last = pending->back().seq;
  high = std::max(high, last);
  for (const crawl::ExchangeLink& msg : *pending) {
    Status s = dst_crawler->AdmitRemoteLink(
        msg.dst_url, msg.relevance, static_cast<int64_t>(msg.src_oid),
        msg.raise_if_known);
    if (!s.ok()) return fail(DrainResult::FailedSide::kDest, std::move(s));
  }
  // Watermark and admissions become durable in the same batch — the
  // exactly-once edge of the protocol.
  Status s = dst_db->SetExchangeWatermark(src_shard, last);
  if (!s.ok()) return fail(DrainResult::FailedSide::kDest, std::move(s));
  s = dst_db->Commit();
  if (!s.ok()) return fail(DrainResult::FailedSide::kDest, std::move(s));

  result.delivered = pending->size();
  stats_.delivered += result.delivered;
  ++stats_.batches;
  if (dst_log != nullptr) {
    dst_log->Record(obs::CrawlEventType::kExchangeBatch, /*oid=*/-1,
                    /*parent_oid=*/src_shard, /*sid=*/-1, /*virtual_us=*/-1,
                    /*value=*/static_cast<double>(last),
                    /*aux=*/static_cast<int64_t>(result.delivered));
  }
  return result;
}

}  // namespace focus::dist
