// Hash partitioning of the URL space across crawl shards.
//
// The unit of ownership is the *server*, not the URL: every URL of one
// host maps to the same shard, so per-server state — circuit breaker,
// retry schedule, the politeness load signal — never needs to cross a
// shard boundary. This is the paper's partitioning (per-server
// assignment to crawler populations) applied to in-process shard groups.
#ifndef FOCUS_DIST_SHARD_ROUTER_H_
#define FOCUS_DIST_SHARD_ROUTER_H_

#include <cstdint>
#include <string_view>

#include "crawl/crawl_db.h"

namespace focus::dist {

class ShardRouter {
 public:
  explicit ShardRouter(int num_shards)
      : num_shards_(num_shards < 1 ? 1 : num_shards) {}

  int num_shards() const { return num_shards_; }

  // Owner shard of a server. The Fibonacci mix decorrelates the
  // assignment from ShardedFrontier's own sid-keyed sharding inside each
  // crawler (both start from the same ServerIdOf hash).
  int ShardOfServer(int32_t sid) const {
    uint64_t h = static_cast<uint64_t>(static_cast<uint32_t>(sid)) *
                 UINT64_C(0x9E3779B97F4A7C15);
    return static_cast<int>((h >> 33) % static_cast<uint64_t>(num_shards_));
  }

  int ShardOfUrl(std::string_view url) const {
    return ShardOfServer(crawl::ServerIdOf(url));
  }

 private:
  int num_shards_;
};

}  // namespace focus::dist

#endif  // FOCUS_DIST_SHARD_ROUTER_H_
