// Hash functions used throughout focus.
//
// Following the paper (§2.1.3): terms get 32-bit hash ids ("tid"), URLs get
// 64-bit hash ids ("oid"), topics get 16-bit ids assigned by the taxonomy.
#ifndef FOCUS_UTIL_HASH_H_
#define FOCUS_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace focus {

// FNV-1a, 64-bit.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// FNV-1a folded to 32 bits (xor-fold preserves avalanche quality).
inline uint32_t Fnv1a32(std::string_view data) {
  uint64_t h = Fnv1a64(data);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

// Finalizer from SplitMix64; a good integer mixer.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Order-independent-free combiner (boost-style, widened to 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

// 32-bit term id for a token, per the paper's representation.
inline uint32_t TermId(std::string_view token) { return Fnv1a32(token); }

// 64-bit object id for a URL, per the paper's representation.
inline uint64_t UrlOid(std::string_view url) { return Fnv1a64(url); }

}  // namespace focus

#endif  // FOCUS_UTIL_HASH_H_
