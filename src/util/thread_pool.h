// A fixed-size worker pool. Used by the multi-threaded crawler, mirroring
// the paper's ~30 concurrent fetch threads.
#ifndef FOCUS_UTIL_THREAD_POOL_H_
#define FOCUS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace focus {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution by a worker.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Index (0-based, within its pool) of the worker running the calling
  // task, or -1 when called off-pool. Lets tasks pick per-worker resources
  // (e.g. a preferred frontier shard) without plumbing an id through every
  // callback.
  static int CurrentWorkerIndex();

  // The pool whose worker is running the calling task, or nullptr when
  // called off-pool. Lets nested fork-join helpers (sql::MorselDispatcher)
  // detect re-entrant dispatch onto their own pool and degrade to inline
  // execution instead of deadlocking on their own workers.
  static const ThreadPool* CurrentPool();

 private:
  void WorkerLoop(int worker_index);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace focus

#endif  // FOCUS_UTIL_THREAD_POOL_H_
