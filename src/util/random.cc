#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace focus {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64Next(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  // Irwin-Hall with n=4: sum of 4 U(0,1) has mean 2, variance 1/3.
  double sum = NextDouble() + NextDouble() + NextDouble() + NextDouble();
  double z = (sum - 2.0) * std::sqrt(3.0);
  return mean + stddev * z;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  assert(k <= n);
  if (k == 0) return {};
  // For small k relative to n, rejection; otherwise partial shuffle.
  if (k * 4 < n) {
    std::unordered_set<size_t> seen;
    std::vector<size_t> out;
    out.reserve(k);
    while (out.size() < k) {
      size_t idx = Uniform(n);
      if (seen.insert(idx).second) out.push_back(idx);
    }
    return out;
  }
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Uniform(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

ZipfTable::ZipfTable(size_t n, double exponent) {
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
}

size_t ZipfTable::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfTable::Pmf(size_t r) const {
  if (r >= cdf_.size()) return 0.0;
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace focus
