// Small string helpers (concatenation, joining, splitting, case folding).
#ifndef FOCUS_UTIL_STRING_UTIL_H_
#define FOCUS_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace focus {

namespace internal_string {
inline void AppendPieces(std::ostringstream&) {}

template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& os, const T& first,
                  const Rest&... rest) {
  os << first;
  AppendPieces(os, rest...);
}
}  // namespace internal_string

// Concatenates streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal_string::AppendPieces(os, args...);
  return os.str();
}

// Joins elements with `sep`, using operator<< for formatting.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    os << p;
    first = false;
  }
  return os.str();
}

// Splits on a single delimiter; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view text, char delim);

// ASCII lowercase copy.
std::string AsciiToLower(std::string_view text);

// True if `text` starts with `prefix`.
inline bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace focus

#endif  // FOCUS_UTIL_STRING_UTIL_H_
