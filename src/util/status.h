// Status and Result<T>: exception-free error handling for the focus library.
//
// Library code never throws. Fallible operations return a Status (or a
// Result<T> when they also produce a value). The conventions mirror
// absl::Status / arrow::Result: `Status::OK()` on success, a code plus a
// human-readable message on failure.
#ifndef FOCUS_UTIL_STATUS_H_
#define FOCUS_UTIL_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace focus {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kUnavailable,
  kDeadlineExceeded,
};

// Returns a stable lowercase name for `code` (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// A value or an error. `value()` must only be called when `ok()`.
template <typename T>
class Result {
 public:
  // Implicit construction from values and from Status keeps call sites
  // readable (`return 42;` / `return Status::NotFound(...)`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(repr_);
  }

  // Moves the value out; the Result must be ok().
  T TakeValue() {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace focus

// Propagates a non-OK Status from an expression to the caller.
#define FOCUS_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::focus::Status focus_status_ = (expr);        \
    if (!focus_status_.ok()) return focus_status_; \
  } while (0)

// Evaluates a Result expression, propagating errors, else binds the value.
#define FOCUS_ASSIGN_OR_RETURN(lhs, expr)                 \
  FOCUS_ASSIGN_OR_RETURN_IMPL_(                           \
      FOCUS_STATUS_CONCAT_(focus_result_, __LINE__), lhs, expr)

#define FOCUS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).TakeValue()

#define FOCUS_STATUS_CONCAT_(a, b) FOCUS_STATUS_CONCAT_IMPL_(a, b)
#define FOCUS_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // FOCUS_UTIL_STATUS_H_
