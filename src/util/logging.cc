#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace focus {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal_log {

void Emit(LogLevel level, const char* file, int line,
          const std::string& message) {
  // Strip directories from the file path for terse output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}

}  // namespace internal_log
}  // namespace focus
