#include "util/thread_pool.h"

namespace focus {

namespace {
thread_local int tls_worker_index = -1;
thread_local const ThreadPool* tls_pool = nullptr;
}  // namespace

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

const ThreadPool* ThreadPool::CurrentPool() { return tls_pool; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_worker_index = worker_index;
  tls_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace focus
