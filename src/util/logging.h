// Minimal leveled logging to stderr.
//
// Usage: FOCUS_LOG(Info, "crawled ", n, " pages"). Arguments are formatted
// with operator<<. The global level gates output; benchmarks default to
// Warning so their stdout stays machine-parseable.
#ifndef FOCUS_UTIL_LOGGING_H_
#define FOCUS_UTIL_LOGGING_H_

#include <string>

#include "util/string_util.h"

namespace focus {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets/gets the minimum level that is emitted. Thread-safe (atomic).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {
void Emit(LogLevel level, const char* file, int line,
          const std::string& message);
}  // namespace internal_log

}  // namespace focus

#define FOCUS_LOG(level, ...)                                               \
  do {                                                                      \
    if (::focus::LogLevel::k##level >= ::focus::GetLogLevel()) {            \
      ::focus::internal_log::Emit(::focus::LogLevel::k##level, __FILE__,    \
                                  __LINE__, ::focus::StrCat(__VA_ARGS__));  \
    }                                                                       \
  } while (0)

// Fatal check; aborts with a message. Used for programming errors only
// (invariant violations), never for data-dependent failures.
#define FOCUS_CHECK(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::focus::internal_log::Emit(::focus::LogLevel::kError, __FILE__,      \
                                  __LINE__,                                 \
                                  ::focus::StrCat("CHECK failed: " #cond    \
                                                  " ",                      \
                                                  ##__VA_ARGS__));          \
      ::abort();                                                            \
    }                                                                       \
  } while (0)

// Debug-only check for hot-path invariants; compiles to nothing (the
// condition is not evaluated) in release builds.
#ifdef NDEBUG
#define FOCUS_DCHECK(cond, ...) \
  do {                          \
    (void)sizeof(cond);         \
  } while (0)
#else
#define FOCUS_DCHECK(cond, ...) FOCUS_CHECK(cond, ##__VA_ARGS__)
#endif

#endif  // FOCUS_UTIL_LOGGING_H_
