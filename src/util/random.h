// Deterministic random number generation.
//
// All randomness in the library flows from a single user-provided seed so
// that graph generation, crawls and benchmarks are reproducible.
#ifndef FOCUS_UTIL_RANDOM_H_
#define FOCUS_UTIL_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace focus {

// xoshiro256** seeded via SplitMix64. Not cryptographic; fast and well
// distributed, which is all simulation needs.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Approximately normal via the sum of 4 uniforms (Irwin-Hall); adequate
  // for document-length jitter and similar simulation uses.
  double Gaussian(double mean, double stddev);

  // Zipf-distributed rank in [0, n) with exponent s, via inverse-CDF over a
  // precomputed table owned by the caller (see ZipfTable).
  // (Use ZipfTable::Sample for repeated draws.)

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

// Precomputed inverse-CDF sampler for a Zipf(s) distribution over ranks
// [0, n). Rank 0 is the most probable.
class ZipfTable {
 public:
  ZipfTable(size_t n, double exponent);

  size_t Sample(Rng* rng) const;
  size_t size() const { return cdf_.size(); }

  // Probability mass of rank r.
  double Pmf(size_t r) const;

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace focus

#endif  // FOCUS_UTIL_RANDOM_H_
