// Wall-clock stopwatch and a virtual clock for simulated crawl time.
#ifndef FOCUS_UTIL_CLOCK_H_
#define FOCUS_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace focus {

// Measures elapsed wall time.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using TimePoint = std::chrono::steady_clock::time_point;
  static TimePoint Now() { return std::chrono::steady_clock::now(); }
  TimePoint start_;
};

// A virtual clock, advanced explicitly by simulation components (e.g. the
// simulated web charges per-fetch latency). Lets "one hour of crawling"
// become a deterministic budget instead of real sleeping.
class VirtualClock {
 public:
  // Current virtual time in microseconds since simulation start.
  int64_t NowMicros() const { return now_micros_; }
  double NowSeconds() const { return static_cast<double>(now_micros_) * 1e-6; }

  void AdvanceMicros(int64_t micros) { now_micros_ += micros; }
  void AdvanceSeconds(double seconds) {
    now_micros_ += static_cast<int64_t>(seconds * 1e6);
  }

 private:
  int64_t now_micros_ = 0;
};

}  // namespace focus

#endif  // FOCUS_UTIL_CLOCK_H_
