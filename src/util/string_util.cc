#include "util/string_util.h"

#include <cctype>

namespace focus {

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace focus
