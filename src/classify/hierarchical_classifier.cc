#include "classify/hierarchical_classifier.h"

#include <algorithm>
#include <cmath>

namespace focus::classify {

namespace {
// log(sum_i exp(x_i)) computed stably.
double LogSumExp(const std::vector<double>& x) {
  double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;
  double s = 0;
  for (double v : x) s += std::exp(v - m);
  return m + std::log(s);
}
}  // namespace

void HierarchicalClassifier::ChildLogLikelihoods(
    taxonomy::Cid c0, const text::TermVector& terms,
    std::vector<double>* out) const {
  const auto& children = tax_->Children(c0);
  out->assign(children.size(), 0.0);
  const NodeModel* node = model_->NodeFor(c0);
  if (node == nullptr) return;
  for (const auto& tf : terms) {
    auto it = node->stats.find(tf.tid);
    if (it == node->stats.end()) continue;  // t not in F(c0)
    // Start everyone at the smoothed default, then overwrite with stored
    // stats — equivalent to Figure 2's present/missing split.
    for (size_t i = 0; i < children.size(); ++i) {
      (*out)[i] -= tf.freq * model_->logdenom[children[i]];
    }
    for (const ChildStat& cs : it->second) {
      for (size_t i = 0; i < children.size(); ++i) {
        if (children[i] == cs.kcid) {
          (*out)[i] += tf.freq * (cs.logtheta +
                                  model_->logdenom[children[i]]);
          break;
        }
      }
    }
  }
}

ClassScores HierarchicalClassifier::PropagateScores(
    const std::unordered_map<taxonomy::Cid, std::vector<double>>& child_ll)
    const {
  ClassScores scores;
  scores.logp.assign(tax_->num_topics(),
                     -std::numeric_limits<double>::infinity());
  scores.logp[taxonomy::kRootCid] = 0.0;
  for (taxonomy::Cid c0 : tax_->InternalPreorder()) {
    const auto& children = tax_->Children(c0);
    auto it = child_ll.find(c0);
    if (it == child_ll.end()) continue;
    std::vector<double> post = it->second;
    for (size_t i = 0; i < children.size(); ++i) {
      post[i] += model_->logprior[children[i]];
    }
    double lse = LogSumExp(post);
    for (size_t i = 0; i < children.size(); ++i) {
      scores.logp[children[i]] = scores.logp[c0] + (post[i] - lse);
    }
  }
  return scores;
}

ClassScores HierarchicalClassifier::Classify(
    const text::TermVector& terms) const {
  std::unordered_map<taxonomy::Cid, std::vector<double>> child_ll;
  for (taxonomy::Cid c0 : tax_->InternalPreorder()) {
    std::vector<double> ll;
    ChildLogLikelihoods(c0, terms, &ll);
    child_ll.emplace(c0, std::move(ll));
  }
  return PropagateScores(child_ll);
}

}  // namespace focus::classify
