#include "classify/bulk_probe.h"

#include <map>

#include "sql/exec/aggregate.h"
#include "sql/exec/basic.h"
#include "sql/exec/join.h"
#include "sql/exec/scan.h"
#include "sql/exec/sort.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace focus::classify {

using sql::AggKind;
using sql::AggSpec;
using sql::Collect;
using sql::Filter;
using sql::HashAggregate;
using sql::HashJoin;
using sql::MergeJoin;
using sql::NestedLoopJoin;
using sql::Operator;
using sql::OperatorPtr;
using sql::ProjExpr;
using sql::Project;
using sql::SeqScan;
using sql::Sort;
using sql::SortKey;
using sql::Tuple;
using sql::TypeId;
using sql::Value;

Status BulkProbeClassifier::BulkProbeNode(
    taxonomy::Cid c0, const sql::Schema& doc_schema,
    const std::vector<sql::Tuple>& doc_sorted,
    std::unordered_map<uint64_t, std::vector<double>>* acc) const {
  auto it = tables_->stat.find(c0);
  if (it == tables_->stat.end()) {
    return Status::Internal(StrCat("no STAT table for node ", c0));
  }
  const sql::Table* stat = it->second;
  const auto& children = ref_->tax().Children(c0);
  std::unordered_map<taxonomy::Cid, int> child_index;
  for (size_t i = 0; i < children.size(); ++i) {
    child_index[children[i]] = static_cast<int>(i);
  }

  Stopwatch join_timer;

  // PARTIAL(did, kcid, lpr1): DOCUMENT ⋈_tid STAT_c0 ⋈_kcid TAXONOMY,
  // group by (did, kcid), sum(freq * (logtheta + logdenom)).
  OperatorPtr doc_by_tid = sql::Analyze(
      plan_, "BorrowedSource DOCUMENT(sorted)",
      std::make_unique<sql::BorrowedSource>(doc_schema, &doc_sorted));
  // STAT_c0's heap is already in (tid, kcid) order.
  OperatorPtr stat_scan = sql::Analyze(plan_, "SeqScan STAT",
                                       std::make_unique<SeqScan>(stat));
  OperatorPtr joined = sql::Analyze(
      plan_, "MergeJoin DOCUMENT~STAT",
      std::make_unique<MergeJoin>(std::move(doc_by_tid),
                                  std::move(stat_scan), std::vector<int>{1},
                                  std::vector<int>{1}));
  // joined: 0 did, 1 tid, 2 freq, 3 kcid, 4 tid, 5 logtheta
  OperatorPtr tax_children = sql::Analyze(
      plan_, "IndexScanEq TAXONOMY by_pcid",
      std::make_unique<sql::IndexScanEq>(
          tables_->taxonomy, tables_->taxonomy->IndexId("by_pcid"),
          std::vector<Value>{Value::Int32(c0)}));
  OperatorPtr with_denom = sql::Analyze(
      plan_, "HashJoin TAXONOMY~joined",
      std::make_unique<HashJoin>(std::move(tax_children), std::move(joined),
                                 std::vector<int>{1}, std::vector<int>{3}));
  // with_denom: 0 pcid, 1 kcid, 2 logprior, 3 logdenom, 4 type, 5 name,
  //             6 did, 7 tid, 8 freq, 9 kcid, 10 tid, 11 logtheta
  OperatorPtr contrib = sql::Analyze(
      plan_, "Project did,kcid,contrib",
      std::make_unique<Project>(
          std::move(with_denom),
          std::vector<ProjExpr>{
              ProjExpr{"did", TypeId::kInt64,
                       [](const Tuple& t) { return t.Get(6); }},
              ProjExpr{"kcid", TypeId::kInt32,
                       [](const Tuple& t) { return t.Get(1); }},
              ProjExpr{"contrib", TypeId::kDouble,
                       [](const Tuple& t) {
                         return Value::Double(
                             t.Get(8).AsInt32() *
                             (t.Get(11).AsDouble() + t.Get(3).AsDouble()));
                       }}}));
  OperatorPtr partial_op = sql::Analyze(
      plan_, "HashAggregate PARTIAL(did,kcid)",
      std::make_unique<HashAggregate>(
          std::move(contrib), std::vector<int>{0, 1},
          std::vector<AggSpec>{AggSpec{AggKind::kSum, 2, "lpr1"}}));
  // Ascending (did, kcid) by construction (ordered aggregation output).

  // DOCLEN(did, len): DOCUMENT restricted to F(c0), grouped by did.
  OperatorPtr features = sql::Analyze(
      plan_, "HashAggregate features(tid)",
      std::make_unique<HashAggregate>(
          sql::Analyze(plan_, "SeqScan STAT",
                       std::make_unique<SeqScan>(stat)),
          std::vector<int>{1},
          std::vector<AggSpec>{AggSpec{AggKind::kCount, -1, "cnt"}}));
  OperatorPtr doc_by_tid2 = sql::Analyze(
      plan_, "BorrowedSource DOCUMENT(sorted)",
      std::make_unique<sql::BorrowedSource>(doc_schema, &doc_sorted));
  OperatorPtr doc_features = sql::Analyze(
      plan_, "MergeJoin DOCUMENT~features",
      std::make_unique<MergeJoin>(std::move(doc_by_tid2),
                                  std::move(features), std::vector<int>{1},
                                  std::vector<int>{0}));
  // doc_features: 0 did, 1 tid, 2 freq, 3 tid, 4 cnt
  OperatorPtr doclen_op = sql::Analyze(
      plan_, "HashAggregate DOCLEN(did)",
      std::make_unique<HashAggregate>(
          std::move(doc_features), std::vector<int>{0},
          std::vector<AggSpec>{AggSpec{AggKind::kSum, 2, "len"}}));

  // COMPLETE(did, kcid, lpr2): DOCLEN × children(c0), -len * logdenom.
  OperatorPtr tax_children2 = sql::Analyze(
      plan_, "IndexScanEq TAXONOMY by_pcid",
      std::make_unique<sql::IndexScanEq>(
          tables_->taxonomy, tables_->taxonomy->IndexId("by_pcid"),
          std::vector<Value>{Value::Int32(c0)}));
  OperatorPtr cross = sql::Analyze(
      plan_, "NestedLoopJoin DOCLEN×children",
      std::make_unique<NestedLoopJoin>(
          std::move(doclen_op), std::move(tax_children2),
          [](const Tuple&, const Tuple&) { return true; }));
  // cross: 0 did, 1 len, 2 pcid, 3 kcid, 4 logprior, 5 logdenom, ...
  OperatorPtr complete_op = sql::Analyze(
      plan_, "Project COMPLETE",
      std::make_unique<Project>(
          std::move(cross),
          std::vector<ProjExpr>{
              ProjExpr{"did", TypeId::kInt64,
                       [](const Tuple& t) { return t.Get(0); }},
              ProjExpr{"kcid", TypeId::kInt32,
                       [](const Tuple& t) { return t.Get(3); }},
              ProjExpr{"lpr2", TypeId::kDouble,
                       [](const Tuple& t) {
                         return Value::Double(-t.Get(1).AsInt64() *
                                              t.Get(5).AsDouble());
                       }}}));
  // Children arrive in ascending kcid order from the index scan only if
  // TAXONOMY rows were inserted in cid order (they were), but sort
  // explicitly to keep the merge-join precondition independent of that.
  OperatorPtr complete_sorted = sql::Analyze(
      plan_, "Sort COMPLETE (did,kcid)",
      std::make_unique<Sort>(std::move(complete_op),
                             std::vector<SortKey>{{0, false}, {1, false}}));

  // final: COMPLETE left outer join PARTIAL on (did, kcid).
  OperatorPtr final_join = sql::Analyze(
      plan_, StrCat("BulkProbeNode c0=", c0, ": MergeJoin COMPLETE~PARTIAL"),
      std::make_unique<MergeJoin>(std::move(complete_sorted),
                                  std::move(partial_op),
                                  std::vector<int>{0, 1},
                                  std::vector<int>{0, 1},
                                  /*left_outer=*/true));
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Collect(final_join.get()));
  stats_.join_seconds += join_timer.ElapsedSeconds();

  Stopwatch finalize_timer;
  // rows: 0 did, 1 kcid, 2 lpr2, 3 did, 4 kcid, 5 lpr1(or NULL)
  for (const Tuple& row : rows) {
    uint64_t did = static_cast<uint64_t>(row.Get(0).AsInt64());
    taxonomy::Cid kcid = static_cast<taxonomy::Cid>(row.Get(1).AsInt32());
    double lpr = row.Get(2).AsDouble() +
                 (row.Get(5).is_null() ? 0.0 : row.Get(5).AsDouble());
    if (!row.Get(5).is_null()) ++stats_.partial_rows;
    auto [entry, inserted] = acc->try_emplace(did);
    if (inserted) entry->second.assign(children.size(), 0.0);
    entry->second[child_index.at(kcid)] = lpr;
  }
  stats_.output_rows += rows.size();
  stats_.finalize_seconds += finalize_timer.ElapsedSeconds();
  return Status::OK();
}

Result<std::unordered_map<uint64_t, ClassScores>>
BulkProbeClassifier::ClassifyAll(const sql::Table* document) const {
  // One sequential pass sorts DOCUMENT by tid into a temp reused by every
  // node's merge joins (as a clustered sort temp would be in DB2).
  Stopwatch sort_timer;
  OperatorPtr doc_sort = sql::Analyze(
      plan_, "Sort DOCUMENT by tid",
      std::make_unique<Sort>(
          sql::Analyze(plan_, "SeqScan DOCUMENT",
                       std::make_unique<SeqScan>(document)),
          std::vector<SortKey>{{1, false}}));
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> doc_sorted,
                         sql::Collect(doc_sort.get()));
  stats_.join_seconds += sort_timer.ElapsedSeconds();

  // Distinct document ids (docs with no feature terms anywhere still get
  // scores — priors only).
  std::unordered_map<uint64_t, bool> dids;
  for (const Tuple& row : doc_sorted) {
    dids.emplace(static_cast<uint64_t>(row.Get(0).AsInt64()), true);
  }

  // Per internal node, per did: child log-likelihood vector.
  std::unordered_map<taxonomy::Cid,
                     std::unordered_map<uint64_t, std::vector<double>>>
      node_acc;
  for (taxonomy::Cid c0 : ref_->tax().InternalPreorder()) {
    FOCUS_RETURN_IF_ERROR(BulkProbeNode(c0, document->schema(), doc_sorted,
                                        &node_acc[c0]));
  }

  Stopwatch finalize_timer;
  std::unordered_map<uint64_t, ClassScores> out;
  out.reserve(dids.size());
  for (const auto& [did, _] : dids) {
    std::unordered_map<taxonomy::Cid, std::vector<double>> child_ll;
    for (taxonomy::Cid c0 : ref_->tax().InternalPreorder()) {
      auto& acc = node_acc[c0];
      auto it = acc.find(did);
      if (it != acc.end()) {
        child_ll.emplace(c0, it->second);
      } else {
        child_ll.emplace(c0,
                         std::vector<double>(ref_->tax().Children(c0).size(),
                                             0.0));
      }
    }
    out.emplace(did, ref_->PropagateScores(child_ll));
  }
  stats_.finalize_seconds += finalize_timer.ElapsedSeconds();
  return out;
}

Result<std::unordered_map<uint64_t, ClassScores>>
BulkProbeClassifier::ClassifyWithPlan(const sql::Table* document,
                                      sql::PlanStats* plan) const {
  plan_ = plan;
  auto result = ClassifyAll(document);
  plan_ = nullptr;
  return result;
}

}  // namespace focus::classify
