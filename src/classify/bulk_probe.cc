#include "classify/bulk_probe.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "sql/exec/aggregate.h"
#include "sql/exec/basic.h"
#include "sql/exec/batch_ops.h"
#include "sql/exec/cost_model.h"
#include "sql/exec/join.h"
#include "sql/exec/scan.h"
#include "sql/exec/sort.h"
#include "storage/page.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace focus::classify {

using sql::AggKind;
using sql::AggSpec;
using sql::Collect;
using sql::Filter;
using sql::HashAggregate;
using sql::HashJoin;
using sql::MergeJoin;
using sql::NestedLoopJoin;
using sql::Operator;
using sql::OperatorPtr;
using sql::ProjExpr;
using sql::Project;
using sql::SeqScan;
using sql::Sort;
using sql::SortKey;
using sql::Tuple;
using sql::TypeId;
using sql::Value;

namespace {

// Engine-selected operator builders: the kParallel plan has the same shape
// as the vectorized one with the heavy operators swapped for their
// morsel-parallel counterparts (bit-identical output either way).
sql::BatchOperatorPtr EngineSort(bool par, sql::MorselDispatcher* d,
                                 sql::BatchOperatorPtr child,
                                 std::vector<SortKey> keys) {
  if (par) {
    return std::make_unique<sql::ParallelSort>(std::move(child),
                                               std::move(keys), d);
  }
  return std::make_unique<sql::BatchSort>(std::move(child), std::move(keys));
}

sql::BatchOperatorPtr EngineMergeJoin(bool par, sql::MorselDispatcher* d,
                                      sql::BatchOperatorPtr left,
                                      sql::BatchOperatorPtr right,
                                      std::vector<int> left_keys,
                                      std::vector<int> right_keys,
                                      bool left_outer = false) {
  if (par) {
    return std::make_unique<sql::ParallelMergeJoin>(
        std::move(left), std::move(right), std::move(left_keys),
        std::move(right_keys), d, left_outer);
  }
  return std::make_unique<sql::BatchMergeJoin>(
      std::move(left), std::move(right), std::move(left_keys),
      std::move(right_keys), left_outer);
}

sql::BatchOperatorPtr EngineProject(bool par, sql::MorselDispatcher* d,
                                    sql::BatchOperatorPtr child,
                                    std::vector<sql::BatchExpr> exprs) {
  if (par) {
    return std::make_unique<sql::ParallelProject>(std::move(child),
                                                  std::move(exprs), d);
  }
  return std::make_unique<sql::BatchProject>(std::move(child),
                                             std::move(exprs));
}

sql::BatchOperatorPtr EngineSortAggregate(bool par, sql::MorselDispatcher* d,
                                          sql::BatchOperatorPtr child,
                                          std::vector<SortKey> sort_keys,
                                          std::vector<int> group_cols,
                                          std::vector<AggSpec> aggs) {
  if (par) {
    return std::make_unique<sql::ParallelSortAggregate>(
        std::move(child), std::move(sort_keys), std::move(group_cols),
        std::move(aggs), d);
  }
  return std::make_unique<sql::BatchSortAggregate>(
      std::move(child), std::move(sort_keys), std::move(group_cols),
      std::move(aggs));
}

}  // namespace

sql::MorselDispatcher* BulkProbeClassifier::dispatcher() const {
  if (dispatcher_ == nullptr) {
    dispatcher_ = std::make_unique<sql::MorselDispatcher>(parallel_threads_);
  }
  return dispatcher_.get();
}

Status BulkProbeClassifier::BulkProbeNode(
    taxonomy::Cid c0, const sql::Schema& doc_schema,
    const std::vector<sql::Tuple>& doc_sorted,
    std::unordered_map<uint64_t, std::vector<double>>* acc) const {
  auto it = tables_->stat.find(c0);
  if (it == tables_->stat.end()) {
    return Status::Internal(StrCat("no STAT table for node ", c0));
  }
  const sql::Table* stat = it->second;
  const auto& children = ref_->tax().Children(c0);
  std::unordered_map<taxonomy::Cid, int> child_index;
  for (size_t i = 0; i < children.size(); ++i) {
    child_index[children[i]] = static_cast<int>(i);
  }

  Stopwatch join_timer;

  // PARTIAL(did, kcid, lpr1): DOCUMENT ⋈_tid STAT_c0 ⋈_kcid TAXONOMY,
  // group by (did, kcid), sum(freq * (logtheta + logdenom)).
  OperatorPtr doc_by_tid = sql::Analyze(
      plan_, "BorrowedSource DOCUMENT(sorted)",
      std::make_unique<sql::BorrowedSource>(doc_schema, &doc_sorted));
  // STAT_c0's heap is already in (tid, kcid) order.
  OperatorPtr stat_scan = sql::Analyze(plan_, "SeqScan STAT",
                                       std::make_unique<SeqScan>(stat));
  OperatorPtr joined = sql::Analyze(
      plan_, "MergeJoin DOCUMENT~STAT",
      std::make_unique<MergeJoin>(std::move(doc_by_tid),
                                  std::move(stat_scan), std::vector<int>{1},
                                  std::vector<int>{1}));
  // joined: 0 did, 1 tid, 2 freq, 3 kcid, 4 tid, 5 logtheta
  OperatorPtr tax_children = sql::Analyze(
      plan_, "IndexScanEq TAXONOMY by_pcid",
      std::make_unique<sql::IndexScanEq>(
          tables_->taxonomy, tables_->taxonomy->IndexId("by_pcid"),
          std::vector<Value>{Value::Int32(c0)}));
  OperatorPtr with_denom = sql::Analyze(
      plan_, "HashJoin TAXONOMY~joined",
      std::make_unique<HashJoin>(std::move(tax_children), std::move(joined),
                                 std::vector<int>{1}, std::vector<int>{3}));
  // with_denom: 0 pcid, 1 kcid, 2 logprior, 3 logdenom, 4 type, 5 name,
  //             6 did, 7 tid, 8 freq, 9 kcid, 10 tid, 11 logtheta
  OperatorPtr contrib = sql::Analyze(
      plan_, "Project did,kcid,contrib",
      std::make_unique<Project>(
          std::move(with_denom),
          std::vector<ProjExpr>{
              ProjExpr{"did", TypeId::kInt64,
                       [](const Tuple& t) { return t.Get(6); }},
              ProjExpr{"kcid", TypeId::kInt32,
                       [](const Tuple& t) { return t.Get(1); }},
              ProjExpr{"contrib", TypeId::kDouble,
                       [](const Tuple& t) {
                         return Value::Double(
                             t.Get(8).AsInt32() *
                             (t.Get(11).AsDouble() + t.Get(3).AsDouble()));
                       }}}));
  OperatorPtr partial_op = sql::Analyze(
      plan_, "HashAggregate PARTIAL(did,kcid)",
      std::make_unique<HashAggregate>(
          std::move(contrib), std::vector<int>{0, 1},
          std::vector<AggSpec>{AggSpec{AggKind::kSum, 2, "lpr1"}}));
  // Ascending (did, kcid) by construction (ordered aggregation output).

  // DOCLEN(did, len): DOCUMENT restricted to F(c0), grouped by did.
  OperatorPtr features = sql::Analyze(
      plan_, "HashAggregate features(tid)",
      std::make_unique<HashAggregate>(
          sql::Analyze(plan_, "SeqScan STAT",
                       std::make_unique<SeqScan>(stat)),
          std::vector<int>{1},
          std::vector<AggSpec>{AggSpec{AggKind::kCount, -1, "cnt"}}));
  OperatorPtr doc_by_tid2 = sql::Analyze(
      plan_, "BorrowedSource DOCUMENT(sorted)",
      std::make_unique<sql::BorrowedSource>(doc_schema, &doc_sorted));
  OperatorPtr doc_features = sql::Analyze(
      plan_, "MergeJoin DOCUMENT~features",
      std::make_unique<MergeJoin>(std::move(doc_by_tid2),
                                  std::move(features), std::vector<int>{1},
                                  std::vector<int>{0}));
  // doc_features: 0 did, 1 tid, 2 freq, 3 tid, 4 cnt
  OperatorPtr doclen_op = sql::Analyze(
      plan_, "HashAggregate DOCLEN(did)",
      std::make_unique<HashAggregate>(
          std::move(doc_features), std::vector<int>{0},
          std::vector<AggSpec>{AggSpec{AggKind::kSum, 2, "len"}}));

  // COMPLETE(did, kcid, lpr2): DOCLEN × children(c0), -len * logdenom.
  OperatorPtr tax_children2 = sql::Analyze(
      plan_, "IndexScanEq TAXONOMY by_pcid",
      std::make_unique<sql::IndexScanEq>(
          tables_->taxonomy, tables_->taxonomy->IndexId("by_pcid"),
          std::vector<Value>{Value::Int32(c0)}));
  OperatorPtr cross = sql::Analyze(
      plan_, "NestedLoopJoin DOCLEN×children",
      std::make_unique<NestedLoopJoin>(
          std::move(doclen_op), std::move(tax_children2),
          [](const Tuple&, const Tuple&) { return true; }));
  // cross: 0 did, 1 len, 2 pcid, 3 kcid, 4 logprior, 5 logdenom, ...
  OperatorPtr complete_op = sql::Analyze(
      plan_, "Project COMPLETE",
      std::make_unique<Project>(
          std::move(cross),
          std::vector<ProjExpr>{
              ProjExpr{"did", TypeId::kInt64,
                       [](const Tuple& t) { return t.Get(0); }},
              ProjExpr{"kcid", TypeId::kInt32,
                       [](const Tuple& t) { return t.Get(3); }},
              ProjExpr{"lpr2", TypeId::kDouble,
                       [](const Tuple& t) {
                         return Value::Double(-t.Get(1).AsInt64() *
                                              t.Get(5).AsDouble());
                       }}}));
  // Children arrive in ascending kcid order from the index scan only if
  // TAXONOMY rows were inserted in cid order (they were), but sort
  // explicitly to keep the merge-join precondition independent of that.
  OperatorPtr complete_sorted = sql::Analyze(
      plan_, "Sort COMPLETE (did,kcid)",
      std::make_unique<Sort>(std::move(complete_op),
                             std::vector<SortKey>{{0, false}, {1, false}}));

  // final: COMPLETE left outer join PARTIAL on (did, kcid).
  OperatorPtr final_join = sql::Analyze(
      plan_, StrCat("BulkProbeNode c0=", c0, ": MergeJoin COMPLETE~PARTIAL"),
      std::make_unique<MergeJoin>(std::move(complete_sorted),
                                  std::move(partial_op),
                                  std::vector<int>{0, 1},
                                  std::vector<int>{0, 1},
                                  /*left_outer=*/true));
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, Collect(final_join.get()));
  stats_.join_seconds += join_timer.ElapsedSeconds();

  Stopwatch finalize_timer;
  // rows: 0 did, 1 kcid, 2 lpr2, 3 did, 4 kcid, 5 lpr1(or NULL)
  for (const Tuple& row : rows) {
    uint64_t did = static_cast<uint64_t>(row.Get(0).AsInt64());
    taxonomy::Cid kcid = static_cast<taxonomy::Cid>(row.Get(1).AsInt32());
    double lpr = row.Get(2).AsDouble() +
                 (row.Get(5).is_null() ? 0.0 : row.Get(5).AsDouble());
    if (!row.Get(5).is_null()) ++stats_.partial_rows;
    auto [entry, inserted] = acc->try_emplace(did);
    if (inserted) entry->second.assign(children.size(), 0.0);
    entry->second[child_index.at(kcid)] = lpr;
  }
  stats_.output_rows += rows.size();
  stats_.finalize_seconds += finalize_timer.ElapsedSeconds();
  return Status::OK();
}

Status BulkProbeClassifier::BulkProbeNodeVec(
    taxonomy::Cid c0, const sql::ColumnSet& doc_sorted,
    const sql::ColumnDictionary* tid_dict,
    std::unordered_map<uint64_t, std::vector<double>>* acc) const {
  auto it = tables_->stat.find(c0);
  if (it == tables_->stat.end()) {
    return Status::Internal(StrCat("no STAT table for node ", c0));
  }
  const sql::Table* stat = it->second;
  const bool par = engine_ == sql::ExecEngine::kParallel;
  const bool enc = tid_dict != nullptr;
  sql::MorselDispatcher* disp = par ? dispatcher() : nullptr;
  const char* eng = par ? "Parallel" : (enc ? "Enc" : "Batch");
  const auto& children = ref_->tax().Children(c0);
  std::unordered_map<taxonomy::Cid, int> child_index;
  for (size_t i = 0; i < children.size(); ++i) {
    child_index[children[i]] = static_cast<int>(i);
  }

  Stopwatch join_timer;

  // children(c0) from TAXONOMY, collected once per node: the kcid ->
  // logdenom lookup folds the scalar plan's HashJoin TAXONOMY~joined into
  // the contrib expression.
  sql::IndexScanEq tax_scan(tables_->taxonomy,
                            tables_->taxonomy->IndexId("by_pcid"),
                            std::vector<Value>{Value::Int32(c0)});
  FOCUS_ASSIGN_OR_RETURN(std::vector<Tuple> tax_rows, Collect(&tax_scan));
  auto logdenom = std::make_shared<std::unordered_map<int32_t, double>>();
  for (const Tuple& row : tax_rows) {
    logdenom->emplace(row.Get(1).AsInt32(), row.Get(3).AsDouble());
  }

  // PARTIAL(did, kcid, lpr1): DOCUMENT ⋈_tid STAT_c0, contrib expression,
  // sort, aggregate over sorted runs. The stable sort keeps the merge
  // join's arrival order within each (did, kcid) group, so the floating
  // accumulation order matches the scalar HashAggregate's exactly.
  // STAT_c0 feeds both the PARTIAL join and the feature-count aggregate;
  // one scan materializes it into columns so the heap pages are decoded
  // once per node (columnar materialization is cheap for this engine).
  sql::ColumnSet stat_cols;
  {
    sql::BatchOperatorPtr scan_once = sql::AnalyzeBatch(
        plan_, StrCat(eng, "TableScan STAT"),
        par ? sql::BatchOperatorPtr(
                  std::make_unique<sql::ParallelTableScan>(stat, disp))
            : sql::BatchOperatorPtr(
                  std::make_unique<sql::BatchTableScan>(stat)));
    FOCUS_RETURN_IF_ERROR(sql::CollectInto(scan_once.get(), &stat_cols));
  }

  // kEncoded: rewrite STAT's tid into the document dictionary's code
  // domain. STAT arrives (tid, kcid)-sorted, so encoding is one linear
  // merge against the sorted dictionary; rows whose tid is outside the
  // document vocabulary get kMissingCode and are dropped right here —
  // no inner join on tid downstream can observe them (the PARTIAL join
  // directly, the DOCLEN join through features(tid)), so results are
  // unchanged while the inner side shrinks to the terms actually probed.
  // Codes inherit tid's sort order (the dictionary is sorted), so every
  // merge-order precondition below survives the rewrite.
  if (enc) {
    sql::ColumnPtr codes =
        sql::EncodeSortedColumn(stat_cols.col(1), *tid_dict);
    std::vector<sql::Column> enc_schema = stat_cols.schema().columns();
    enc_schema[1].type = TypeId::kInt32;
    if (std::all_of(codes->i32.begin(), codes->i32.end(),
                    [](int32_t c) { return c >= 0; })) {
      stat_cols = sql::ColumnSet(
          sql::Schema(std::move(enc_schema)),
          {stat_cols.col_ptr(0), codes, stat_cols.col_ptr(2)});
    } else {
      std::vector<int64_t> sel;
      sel.reserve(codes->i32.size());
      for (size_t i = 0; i < codes->i32.size(); ++i) {
        if (codes->i32[i] >= 0) sel.push_back(static_cast<int64_t>(i));
      }
      stat_cols = sql::ColumnSet(
          sql::Schema(std::move(enc_schema)),
          {sql::Gather(stat_cols.col(0), sel.data(), sel.size()),
           sql::Gather(*codes, sel.data(), sel.size()),
           sql::Gather(stat_cols.col(2), sel.data(), sel.size())});
    }
  }

  sql::BatchOperatorPtr doc_src = sql::AnalyzeBatch(
      plan_, "BatchSource DOCUMENT(sorted)",
      std::make_unique<sql::BatchSource>(&doc_sorted));
  sql::BatchOperatorPtr stat_scan = sql::AnalyzeBatch(
      plan_, "BatchSource STAT",
      std::make_unique<sql::BatchSource>(&stat_cols));
  // STAT_c0's heap is already in (tid, kcid) order. (The parallel merge
  // join re-sorts internally; a stable sort of sorted input is the
  // identity permutation, so the plan stays bit-exact.)
  //
  // kEncoded picks the access path per node: the cost model weighs a
  // sort-merge pass against probing STAT through a dense run table over
  // the code domain. Hash is excluded — the final outer join consumes
  // merge order, and hash output order differs (parallel.h). Both
  // allowed paths emit left-major sorted pairs, so the choice is
  // invisible to results.
  sql::BatchOperatorPtr joined;
  if (enc) {
    sql::JoinStats js;
    js.left_rows = static_cast<uint64_t>(doc_sorted.num_rows());
    js.left_distinct = static_cast<uint64_t>(tid_dict->size());
    js.right_rows = static_cast<uint64_t>(stat_cols.num_rows());
    js.right_distinct = 0;  // ≤ left_distinct; containment uses max
    js.right_domain = static_cast<uint64_t>(tid_dict->size());
    js.right_bytes = static_cast<uint64_t>(stat_cols.num_rows()) * 16;
    js.buffer_bytes = static_cast<uint64_t>(
                          stat->buffer_pool()->num_frames()) *
                      storage::kPageSize;
    sql::PathChoice choice = sql::ChooseJoinPath(js);
    sql::RecordPathChoice("classify.partial", choice);
    sql::BatchOperatorPtr join_op =
        choice.path == sql::AccessPath::kIndexProbe
            ? sql::BatchOperatorPtr(std::make_unique<sql::BatchProbeJoin>(
                  std::move(doc_src), std::move(stat_scan), 1, 1,
                  /*left_outer=*/false,
                  static_cast<int64_t>(tid_dict->size())))
            : sql::BatchOperatorPtr(std::make_unique<sql::BatchMergeJoin>(
                  std::move(doc_src), std::move(stat_scan),
                  std::vector<int>{1}, std::vector<int>{1}));
    joined = sql::AnalyzeBatchCost(
        plan_, StrCat(eng, "Join DOCUMENT~STAT"),
        sql::CountActualRows("classify.partial", std::move(join_op)),
        sql::AccessPathName(choice.path), choice.est_rows);
  } else {
    joined = sql::AnalyzeBatch(
        plan_, StrCat(eng, "MergeJoin DOCUMENT~STAT"),
        EngineMergeJoin(par, disp, std::move(doc_src), std::move(stat_scan),
                        std::vector<int>{1}, std::vector<int>{1}));
  }
  // joined: 0 did, 1 tid, 2 freq, 3 kcid, 4 tid, 5 logtheta
  sql::BatchOperatorPtr contrib = sql::AnalyzeBatch(
      plan_, StrCat(eng, "Project did,kcid,contrib"),
      EngineProject(
          par, disp, std::move(joined),
          std::vector<sql::BatchExpr>{
              sql::BatchExpr::Passthrough("did", TypeId::kInt64, 0),
              sql::BatchExpr::Passthrough("kcid", TypeId::kInt32, 3),
              sql::BatchExpr{
                  "contrib", TypeId::kDouble,
                  [logdenom](const sql::Batch& in) {
                    const auto& freq = in.col(2).i32;
                    const auto& kcid = in.col(3).i32;
                    const auto& theta = in.col(5).f64;
                    sql::ColumnPtr out = sql::NewColumn(TypeId::kDouble);
                    out->f64.reserve(freq.size());
                    for (size_t i = 0; i < freq.size(); ++i) {
                      out->f64.push_back(freq[i] * (theta[i] +
                                                    logdenom->at(kcid[i])));
                    }
                    return out;
                  }}}));
  sql::BatchOperatorPtr partial_op = sql::AnalyzeBatch(
      plan_, StrCat(eng, "SortAggregate PARTIAL(did,kcid)"),
      EngineSortAggregate(
          par, disp, std::move(contrib),
          std::vector<SortKey>{{0, false}, {1, false}},
          std::vector<int>{0, 1},
          std::vector<AggSpec>{AggSpec{AggKind::kSum, 2, "lpr1"}}));

  // DOCLEN(did, len): DOCUMENT restricted to F(c0), grouped by did.
  // Serial streams the pre-sorted STAT through BatchSortedAggregate; the
  // parallel plan radix-partitions by tid instead (count aggregation over
  // the same runs, identical output order).
  sql::BatchOperatorPtr features_src = sql::AnalyzeBatch(
      plan_, "BatchSource STAT",
      std::make_unique<sql::BatchSource>(&stat_cols));
  sql::BatchOperatorPtr features = sql::AnalyzeBatch(
      plan_,
      par ? "ParallelSortAggregate features(tid)"
          : "BatchSortedAggregate features(tid)",
      par ? sql::BatchOperatorPtr(std::make_unique<sql::ParallelSortAggregate>(
                std::move(features_src), std::vector<SortKey>{{1, false}},
                std::vector<int>{1},
                std::vector<AggSpec>{AggSpec{AggKind::kCount, -1, "cnt"}},
                disp))
          : sql::BatchOperatorPtr(std::make_unique<sql::BatchSortedAggregate>(
                std::move(features_src), std::vector<int>{1},
                std::vector<AggSpec>{AggSpec{AggKind::kCount, -1, "cnt"}})));
  sql::BatchOperatorPtr doc_src2 = sql::AnalyzeBatch(
      plan_, "BatchSource DOCUMENT(sorted)",
      std::make_unique<sql::BatchSource>(&doc_sorted));
  sql::BatchOperatorPtr doc_features;
  if (enc) {
    // features is (tid_code, cnt), one row per distinct code, ascending —
    // a textbook dense-probe inner. Same allowed set as above.
    sql::JoinStats js;
    js.left_rows = static_cast<uint64_t>(doc_sorted.num_rows());
    js.left_distinct = static_cast<uint64_t>(tid_dict->size());
    uint64_t feat_rows =
        std::min(static_cast<uint64_t>(stat_cols.num_rows()),
                 static_cast<uint64_t>(tid_dict->size()));
    js.right_rows = feat_rows;
    js.right_distinct = feat_rows;
    js.right_domain = static_cast<uint64_t>(tid_dict->size());
    js.right_bytes = feat_rows * 12;
    js.buffer_bytes = static_cast<uint64_t>(
                          stat->buffer_pool()->num_frames()) *
                      storage::kPageSize;
    sql::PathChoice choice = sql::ChooseJoinPath(js);
    sql::RecordPathChoice("classify.doclen", choice);
    sql::BatchOperatorPtr join_op =
        choice.path == sql::AccessPath::kIndexProbe
            ? sql::BatchOperatorPtr(std::make_unique<sql::BatchProbeJoin>(
                  std::move(doc_src2), std::move(features), 1, 0,
                  /*left_outer=*/false,
                  static_cast<int64_t>(tid_dict->size())))
            : sql::BatchOperatorPtr(std::make_unique<sql::BatchMergeJoin>(
                  std::move(doc_src2), std::move(features),
                  std::vector<int>{1}, std::vector<int>{0}));
    doc_features = sql::AnalyzeBatchCost(
        plan_, StrCat(eng, "Join DOCUMENT~features"),
        sql::CountActualRows("classify.doclen", std::move(join_op)),
        sql::AccessPathName(choice.path), choice.est_rows);
  } else {
    doc_features = sql::AnalyzeBatch(
        plan_, StrCat(eng, "MergeJoin DOCUMENT~features"),
        EngineMergeJoin(par, disp, std::move(doc_src2), std::move(features),
                        std::vector<int>{1}, std::vector<int>{0}));
  }
  // doc_features: 0 did, 1 tid, 2 freq, 3 tid, 4 cnt
  sql::BatchOperatorPtr doclen_op = sql::AnalyzeBatch(
      plan_, StrCat(eng, "SortAggregate DOCLEN(did)"),
      EngineSortAggregate(par, disp, std::move(doc_features),
                          std::vector<SortKey>{{0, false}},
                          std::vector<int>{0},
                          std::vector<AggSpec>{AggSpec{AggKind::kSum, 2,
                                                       "len"}}));

  // COMPLETE(did, kcid, lpr2): DOCLEN × children(c0), -len * logdenom.
  // The children side runs the scalar index scan through the Vectorize
  // adapter — scalar and batch operators composing in one plan.
  sql::BatchOperatorPtr tax_children = sql::AnalyzeBatch(
      plan_, "BatchProject kcid,logdenom",
      std::make_unique<sql::BatchProject>(
          sql::AnalyzeBatch(
              plan_, "Vectorize IndexScanEq TAXONOMY by_pcid",
              std::make_unique<sql::Vectorize>(
                  std::make_unique<sql::IndexScanEq>(
                      tables_->taxonomy,
                      tables_->taxonomy->IndexId("by_pcid"),
                      std::vector<Value>{Value::Int32(c0)}))),
          std::vector<sql::BatchExpr>{
              sql::BatchExpr::Passthrough("kcid", TypeId::kInt32, 1),
              sql::BatchExpr::Passthrough("logdenom", TypeId::kDouble, 3)}));
  sql::BatchOperatorPtr cross = sql::AnalyzeBatch(
      plan_, "BatchCrossJoin DOCLEN×children",
      std::make_unique<sql::BatchCrossJoin>(std::move(doclen_op),
                                            std::move(tax_children)));
  // cross: 0 did, 1 len, 2 kcid, 3 logdenom
  sql::BatchOperatorPtr complete_op = sql::AnalyzeBatch(
      plan_, "BatchProject COMPLETE",
      std::make_unique<sql::BatchProject>(
          std::move(cross),
          std::vector<sql::BatchExpr>{
              sql::BatchExpr::Passthrough("did", TypeId::kInt64, 0),
              sql::BatchExpr::Passthrough("kcid", TypeId::kInt32, 2),
              sql::BatchExpr{"lpr2", TypeId::kDouble,
                             [](const sql::Batch& in) {
                               const auto& len = in.col(1).i64;
                               const auto& denom = in.col(3).f64;
                               sql::ColumnPtr out =
                                   sql::NewColumn(TypeId::kDouble);
                               out->f64.reserve(len.size());
                               for (size_t i = 0; i < len.size(); ++i) {
                                 out->f64.push_back(-len[i] * denom[i]);
                               }
                               return out;
                             }}}));
  // The parallel merge join fuses the COMPLETE sort into its radix
  // partition + per-partition sort (same stable permutation), so the
  // explicit sort node only exists in the serial plan.
  sql::BatchOperatorPtr complete_sorted =
      par ? std::move(complete_op)
          : sql::AnalyzeBatch(
                plan_, "BatchSort COMPLETE (did,kcid)",
                std::make_unique<sql::BatchSort>(
                    std::move(complete_op),
                    std::vector<SortKey>{{0, false}, {1, false}}));

  // final: COMPLETE left outer join PARTIAL on (did, kcid).
  sql::BatchOperatorPtr final_join = sql::AnalyzeBatch(
      plan_,
      StrCat("BulkProbeNode c0=", c0, ": ", eng,
             "MergeJoin COMPLETE~PARTIAL"),
      EngineMergeJoin(par, disp, std::move(complete_sorted),
                      std::move(partial_op), std::vector<int>{0, 1},
                      std::vector<int>{0, 1}, /*left_outer=*/true));

  // Drain straight from the columns: 0 did, 1 kcid, 2 lpr2, 3 did,
  // 4 kcid, 5 lpr1 (NULL when no PARTIAL row).
  FOCUS_RETURN_IF_ERROR(final_join->Open());
  sql::Batch batch;
  for (;;) {
    FOCUS_ASSIGN_OR_RETURN(bool more, final_join->NextBatch(&batch));
    if (!more) break;
    size_t n = batch.num_rows();
    const auto& did_col = batch.col(0).i64;
    const auto& kcid_col = batch.col(1).i32;
    const auto& lpr2_col = batch.col(2).f64;
    const sql::ColumnData& lpr1 = batch.col(5);
    stats_.output_rows += n;
    for (size_t i = 0; i < n; ++i) {
      double lpr = lpr2_col[i];
      if (!lpr1.IsNull(i)) {
        lpr += lpr1.f64[i];
        ++stats_.partial_rows;
      }
      auto [entry, inserted] =
          acc->try_emplace(static_cast<uint64_t>(did_col[i]));
      if (inserted) entry->second.assign(children.size(), 0.0);
      entry->second[child_index.at(kcid_col[i])] = lpr;
    }
  }
  final_join->Close();
  stats_.join_seconds += join_timer.ElapsedSeconds();
  return Status::OK();
}

Result<std::unordered_map<uint64_t, ClassScores>>
BulkProbeClassifier::Finalize(
    const std::vector<uint64_t>& dids,
    std::unordered_map<taxonomy::Cid,
                       std::unordered_map<uint64_t, std::vector<double>>>*
        node_acc) const {
  Stopwatch finalize_timer;
  std::unordered_map<uint64_t, ClassScores> out;
  out.reserve(dids.size());
  for (uint64_t did : dids) {
    std::unordered_map<taxonomy::Cid, std::vector<double>> child_ll;
    for (taxonomy::Cid c0 : ref_->tax().InternalPreorder()) {
      auto& acc = (*node_acc)[c0];
      auto it = acc.find(did);
      if (it != acc.end()) {
        child_ll.emplace(c0, it->second);
      } else {
        child_ll.emplace(c0,
                         std::vector<double>(ref_->tax().Children(c0).size(),
                                             0.0));
      }
    }
    out.emplace(did, ref_->PropagateScores(child_ll));
  }
  stats_.finalize_seconds += finalize_timer.ElapsedSeconds();
  return out;
}

Result<std::unordered_map<uint64_t, ClassScores>>
BulkProbeClassifier::ClassifyAllScalar(const sql::Table* document) const {
  // One sequential pass sorts DOCUMENT by tid into a temp reused by every
  // node's merge joins (as a clustered sort temp would be in DB2).
  Stopwatch sort_timer;
  OperatorPtr doc_sort = sql::Analyze(
      plan_, "Sort DOCUMENT by tid",
      std::make_unique<Sort>(
          sql::Analyze(plan_, "SeqScan DOCUMENT",
                       std::make_unique<SeqScan>(document)),
          std::vector<SortKey>{{1, false}}));
  FOCUS_ASSIGN_OR_RETURN(
      std::vector<Tuple> doc_sorted,
      sql::Collect(doc_sort.get(), document->num_rows()));
  stats_.join_seconds += sort_timer.ElapsedSeconds();

  // Distinct document ids (docs with no feature terms anywhere still get
  // scores — priors only).
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> dids;
  for (const Tuple& row : doc_sorted) {
    uint64_t did = static_cast<uint64_t>(row.Get(0).AsInt64());
    if (seen.insert(did).second) dids.push_back(did);
  }

  // Per internal node, per did: child log-likelihood vector.
  std::unordered_map<taxonomy::Cid,
                     std::unordered_map<uint64_t, std::vector<double>>>
      node_acc;
  for (taxonomy::Cid c0 : ref_->tax().InternalPreorder()) {
    FOCUS_RETURN_IF_ERROR(BulkProbeNode(c0, document->schema(), doc_sorted,
                                        &node_acc[c0]));
  }
  return Finalize(dids, &node_acc);
}

Result<std::unordered_map<uint64_t, ClassScores>>
BulkProbeClassifier::ClassifyAllVectorized(
    const sql::Table* document) const {
  // One batch pass sorts DOCUMENT by tid into a columnar temp shared
  // (zero-copy for small batches) by every node's merge joins.
  const bool par = engine_ == sql::ExecEngine::kParallel;
  sql::MorselDispatcher* disp = par ? dispatcher() : nullptr;
  const char* eng = par ? "Parallel" : "Batch";
  Stopwatch sort_timer;
  sql::BatchOperatorPtr doc_scan = sql::AnalyzeBatch(
      plan_, StrCat(eng, "TableScan DOCUMENT"),
      par ? sql::BatchOperatorPtr(
                std::make_unique<sql::ParallelTableScan>(document, disp))
          : sql::BatchOperatorPtr(
                std::make_unique<sql::BatchTableScan>(document)));
  sql::BatchOperatorPtr doc_sort = sql::AnalyzeBatch(
      plan_, StrCat(eng, "Sort DOCUMENT by tid"),
      EngineSort(par, disp, std::move(doc_scan),
                 std::vector<SortKey>{{1, false}}));
  sql::ColumnSet doc_sorted;
  FOCUS_RETURN_IF_ERROR(sql::CollectInto(doc_sort.get(), &doc_sorted));

  // kEncoded: one dictionary over the sorted tid column (linear build,
  // since the column is the sort key) encodes the shared temp once for
  // all nodes. did/freq columns are adopted zero-copy; only the tid
  // column is replaced by its int32 codes — nothing downstream of the
  // joins reads tid values, so no decode is ever needed in this plan.
  const bool enc = engine_ == sql::ExecEngine::kEncoded;
  sql::DictionaryPtr tid_dict;
  sql::ColumnSet doc_enc;
  if (enc) {
    tid_dict = sql::ColumnDictionary::BuildFromSorted(doc_sorted.col(1));
    std::vector<sql::ColumnPtr> cols;
    cols.reserve(doc_sorted.num_columns());
    for (int i = 0; i < doc_sorted.num_columns(); ++i) {
      cols.push_back(doc_sorted.col_ptr(i));
    }
    cols[1] = sql::EncodeSortedColumn(doc_sorted.col(1), *tid_dict);
    std::vector<sql::Column> enc_schema = doc_sorted.schema().columns();
    enc_schema[1].type = sql::TypeId::kInt32;
    doc_enc = sql::ColumnSet(sql::Schema(std::move(enc_schema)),
                             std::move(cols));
  }
  const sql::ColumnSet& doc_temp = enc ? doc_enc : doc_sorted;
  stats_.join_seconds += sort_timer.ElapsedSeconds();

  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> dids;
  for (int64_t did : doc_sorted.col(0).i64) {
    if (seen.insert(static_cast<uint64_t>(did)).second) {
      dids.push_back(static_cast<uint64_t>(did));
    }
  }

  std::unordered_map<taxonomy::Cid,
                     std::unordered_map<uint64_t, std::vector<double>>>
      node_acc;
  for (taxonomy::Cid c0 : ref_->tax().InternalPreorder()) {
    FOCUS_RETURN_IF_ERROR(
        BulkProbeNodeVec(c0, doc_temp, tid_dict.get(), &node_acc[c0]));
  }
  return Finalize(dids, &node_acc);
}

Result<std::unordered_map<uint64_t, ClassScores>>
BulkProbeClassifier::ClassifyAll(const sql::Table* document) const {
  return engine_ == sql::ExecEngine::kScalar ? ClassifyAllScalar(document)
                                             : ClassifyAllVectorized(document);
}

Result<std::unordered_map<uint64_t, ClassScores>>
BulkProbeClassifier::ClassifyWithPlan(const sql::Table* document,
                                      sql::PlanStats* plan) const {
  plan_ = plan;
  auto result = ClassifyAll(document);
  plan_ = nullptr;
  return result;
}

}  // namespace focus::classify
