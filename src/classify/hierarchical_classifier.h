// In-memory hierarchical classification (the reference implementation of
// Figure 2's math, without the database access path).
//
// The DB-resident SingleProbe/BulkProbe classifiers compute identical
// scores (verified by tests); they differ only in where the statistics
// live and in I/O behaviour.
#ifndef FOCUS_CLASSIFY_HIERARCHICAL_CLASSIFIER_H_
#define FOCUS_CLASSIFY_HIERARCHICAL_CLASSIFIER_H_

#include "classify/model.h"
#include "taxonomy/taxonomy.h"
#include "text/document.h"

namespace focus::classify {

class HierarchicalClassifier {
 public:
  // Both references must outlive the classifier.
  HierarchicalClassifier(const taxonomy::Taxonomy* tax,
                         const ClassifierModel* model)
      : tax_(tax), model_(model) {}

  // Computes log Pr[c|d] for every topic by recursive application of the
  // chain rule from the root (Equation 2), with log-sum-exp
  // normalization among siblings.
  ClassScores Classify(const text::TermVector& terms) const;

  // Soft-focus relevance R(d) (Equation 3).
  double Relevance(const text::TermVector& terms) const {
    return Classify(terms).Relevance(*tax_);
  }

  const taxonomy::Taxonomy& tax() const { return *tax_; }
  const ClassifierModel& model() const { return *model_; }

  // Computes the unnormalized per-child class-conditional log-likelihoods
  // at internal node `c0` for one document:
  //   L[i] = sum over feature terms t of freq(d,t) * logtheta(ci, t),
  // with the smoothed default -logdenom(ci) for absent stats (Figure 2).
  // Shared by the DB-backed classifiers, which produce the same vector
  // from table probes. `out` is indexed like tax.Children(c0).
  void ChildLogLikelihoods(taxonomy::Cid c0, const text::TermVector& terms,
                           std::vector<double>* out) const;

  // Turns per-node child log-likelihoods into final ClassScores: adds
  // logprior, normalizes among siblings and accumulates down the tree.
  // `child_ll` maps each internal cid to its ChildLogLikelihoods vector.
  ClassScores PropagateScores(
      const std::unordered_map<taxonomy::Cid, std::vector<double>>& child_ll)
      const;

 private:
  const taxonomy::Taxonomy* tax_;
  const ClassifierModel* model_;
};

}  // namespace focus::classify

#endif  // FOCUS_CLASSIFY_HIERARCHICAL_CLASSIFIER_H_
