#include "classify/single_probe.h"

#include "util/clock.h"
#include "util/string_util.h"

namespace focus::classify {

using sql::Tuple;
using sql::Value;

Status SingleProbeClassifier::ProbeNode(taxonomy::Cid c0,
                                        const text::TermVector& terms,
                                        std::vector<double>* out) const {
  const auto& children = ref_->tax().Children(c0);
  const ClassifierModel& model = ref_->model();
  out->assign(children.size(), 0.0);

  auto child_index = [&](taxonomy::Cid kcid) -> int {
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i] == kcid) return static_cast<int>(i);
    }
    return -1;
  };

  std::vector<ChildStat> stats;
  for (const auto& tf : terms) {
    stats.clear();
    Stopwatch probe_timer;
    ++stats_.probes;
    if (variant_ == Variant::kBlob) {
      std::vector<storage::Rid> rids;
      FOCUS_RETURN_IF_ERROR(tables_->blob->IndexLookup(
          0,
          {Value::Int32(c0), Value::Int64(static_cast<int64_t>(tf.tid))},
          &rids));
      if (rids.size() > 1) {
        return Status::Internal(
            StrCat("duplicate BLOB row for node ", c0, " tid ", tf.tid));
      }
      if (!rids.empty()) {
        Tuple row;
        FOCUS_RETURN_IF_ERROR(tables_->blob->Get(rids[0], &row));
        ++stats_.rows_fetched;
        FOCUS_ASSIGN_OR_RETURN(stats,
                               DecodeBlobPayload(row.Get(2).AsString()));
      }
    } else {
      auto it = tables_->stat.find(c0);
      if (it == tables_->stat.end()) {
        return Status::Internal(StrCat("no STAT table for node ", c0));
      }
      std::vector<storage::Rid> rids;
      FOCUS_RETURN_IF_ERROR(it->second->IndexLookup(
          0, {Value::Int64(static_cast<int64_t>(tf.tid))}, &rids));
      Tuple row;
      for (const auto& rid : rids) {
        FOCUS_RETURN_IF_ERROR(it->second->Get(rid, &row));
        ++stats_.rows_fetched;
        stats.push_back(
            ChildStat{static_cast<taxonomy::Cid>(row.Get(0).AsInt32()),
                      row.Get(2).AsDouble()});
      }
    }
    stats_.probe_seconds += probe_timer.ElapsedSeconds();

    if (stats.empty()) continue;  // t is not a feature at c0
    Stopwatch compute_timer;
    // Figure 2: present children get freq*logtheta, absent children pay the
    // smoothed default -freq*logdenom. Expressed as default-then-correct.
    for (size_t i = 0; i < children.size(); ++i) {
      (*out)[i] -= tf.freq * model.logdenom[children[i]];
    }
    for (const ChildStat& cs : stats) {
      int i = child_index(cs.kcid);
      if (i < 0) {
        return Status::Internal(
            StrCat("stat row for ", cs.kcid, " not a child of ", c0));
      }
      (*out)[i] += tf.freq * (cs.logtheta + model.logdenom[cs.kcid]);
    }
    stats_.compute_seconds += compute_timer.ElapsedSeconds();
  }
  return Status::OK();
}

Result<ClassScores> SingleProbeClassifier::Classify(
    const text::TermVector& terms) const {
  std::unordered_map<taxonomy::Cid, std::vector<double>> child_ll;
  for (taxonomy::Cid c0 : ref_->tax().InternalPreorder()) {
    std::vector<double> ll;
    FOCUS_RETURN_IF_ERROR(ProbeNode(c0, terms, &ll));
    child_ll.emplace(c0, std::move(ll));
  }
  Stopwatch compute_timer;
  ClassScores scores = ref_->PropagateScores(child_ll);
  stats_.compute_seconds += compute_timer.ElapsedSeconds();
  return scores;
}

}  // namespace focus::classify
