// Relational representation of the classifier (Figure 1's TAXONOMY, STAT_c
// and BLOB tables) plus DOCUMENT table helpers.
//
// Layouts:
//   TAXONOMY(pcid:int32, kcid:int32, logprior:double, logdenom:double,
//            type:int32, name:string)           index: by_pcid(pcid)
//   STAT_<c0>(kcid:int32, tid:int64, logtheta:double)
//            heap-ordered by (tid, kcid)        index: by_tid(tid:32)
//   BLOB(pcid:int32, tid:int64, payload:string) index: by_pcid_tid(16+32)
//     payload = repeated {kcid:u16, logtheta:f64} records
//   DOCUMENT(did:int64, tid:int64, freq:int32)  index: by_did(did)
//
// tid is the 32-bit term hash stored in an int64 column (tids exceed
// INT32_MAX); index keys use 32-bit fields, matching the paper's layout.
#ifndef FOCUS_CLASSIFY_DB_TABLES_H_
#define FOCUS_CLASSIFY_DB_TABLES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "classify/model.h"
#include "sql/catalog.h"
#include "taxonomy/taxonomy.h"
#include "text/document.h"
#include "util/status.h"

namespace focus::classify {

struct ClassifierTables {
  sql::Table* taxonomy = nullptr;
  std::unordered_map<taxonomy::Cid, sql::Table*> stat;  // per internal node
  sql::Table* blob = nullptr;
};

// Materializes the trained model into catalog tables.
Result<ClassifierTables> BuildClassifierTables(sql::Catalog* catalog,
                                               const taxonomy::Taxonomy& tax,
                                               const ClassifierModel& model);

// Encodes/decodes a BLOB payload (the per-(c0,t) record set).
std::string EncodeBlobPayload(const std::vector<ChildStat>& stats);
Result<std::vector<ChildStat>> DecodeBlobPayload(std::string_view payload);

// Creates an empty DOCUMENT table named `name`.
Result<sql::Table*> CreateDocumentTable(sql::Catalog* catalog,
                                        const std::string& name);

// Appends one document's (did, tid, freq) rows.
Status InsertDocument(sql::Table* document, uint64_t did,
                      const text::TermVector& terms);

// Reads one document back via the by_did index (the "Scan Doc" step of the
// per-document classifiers).
Result<text::TermVector> FetchDocument(const sql::Table* document,
                                       uint64_t did);

}  // namespace focus::classify

#endif  // FOCUS_CLASSIFY_DB_TABLES_H_
