#include "classify/trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace focus::classify {

namespace {

// Per-term accumulators at one internal node.
struct TermAccum {
  // Document frequency and token count per child index, plus first and
  // second moments of the per-document term rate (for Fisher's index).
  std::vector<int32_t> df;
  std::vector<int64_t> count;
  std::vector<double> rate_sum;
  std::vector<double> rate_sq_sum;

  explicit TermAccum(size_t num_children)
      : df(num_children, 0),
        count(num_children, 0),
        rate_sum(num_children, 0),
        rate_sq_sum(num_children, 0) {}
};

// Binary mutual information between term presence and the child class,
// computed from per-child document frequencies.
double MutualInformation(const std::vector<int32_t>& df,
                         const std::vector<int64_t>& docs_per_child,
                         int64_t total_docs) {
  double mi = 0;
  int64_t df_total = 0;
  for (int32_t d : df) df_total += d;
  double p_present = static_cast<double>(df_total) / total_docs;
  for (size_t i = 0; i < df.size(); ++i) {
    if (docs_per_child[i] == 0) continue;
    double p_class = static_cast<double>(docs_per_child[i]) / total_docs;
    // x = 1 (term present)
    if (df[i] > 0 && p_present > 0) {
      double p_joint = static_cast<double>(df[i]) / total_docs;
      mi += p_joint * std::log(p_joint / (p_present * p_class));
    }
    // x = 0 (term absent)
    int64_t absent = docs_per_child[i] - df[i];
    if (absent > 0 && p_present < 1.0) {
      double p_joint = static_cast<double>(absent) / total_docs;
      mi += p_joint * std::log(p_joint / ((1.0 - p_present) * p_class));
    }
  }
  return mi;
}

// Fisher's discriminant index over per-document term rates: ratio of
// between-class scatter of the class means to the pooled within-class
// variance. Larger = the term separates the children better.
double FisherIndex(const TermAccum& acc,
                   const std::vector<int64_t>& docs_per_child) {
  size_t k = docs_per_child.size();
  double grand_sum = 0;
  int64_t grand_n = 0;
  std::vector<double> mean(k, 0);
  for (size_t i = 0; i < k; ++i) {
    if (docs_per_child[i] == 0) continue;
    mean[i] = acc.rate_sum[i] / docs_per_child[i];
    grand_sum += acc.rate_sum[i];
    grand_n += docs_per_child[i];
  }
  double grand_mean = grand_n == 0 ? 0 : grand_sum / grand_n;
  double between = 0, within = 0;
  for (size_t i = 0; i < k; ++i) {
    if (docs_per_child[i] == 0) continue;
    double diff = mean[i] - grand_mean;
    between += diff * diff;
    double var = acc.rate_sq_sum[i] / docs_per_child[i] - mean[i] * mean[i];
    within += var > 0 ? var : 0;
  }
  constexpr double kEps = 1e-12;  // all-identical rates: avoid 0/0
  return between / (within + kEps);
}

}  // namespace

Result<ClassifierModel> Trainer::Train(
    const taxonomy::Taxonomy& tax,
    const std::vector<LabeledDocument>& examples) const {
  ClassifierModel model;
  model.logprior.assign(tax.num_topics(), 0.0);
  model.logdenom.assign(tax.num_topics(), 0.0);

  // Map each document to the path of topics it trains (a doc labelled at a
  // leaf contributes to D(c) for every ancestor c of that leaf).
  for (const auto& doc : examples) {
    if (!tax.IsValidCid(doc.label)) {
      return Status::InvalidArgument(StrCat("bad label cid ", doc.label));
    }
  }

  for (taxonomy::Cid c0 : tax.InternalPreorder()) {
    const std::vector<taxonomy::Cid>& children = tax.Children(c0);
    size_t k = children.size();
    // Child index of a leaf-labelled doc at this node, or -1.
    auto child_index_of = [&](taxonomy::Cid label) -> int {
      for (size_t i = 0; i < k; ++i) {
        if (tax.IsAncestor(children[i], label, /*or_self=*/true)) {
          return static_cast<int>(i);
        }
      }
      return -1;
    };

    // --- accumulate counts ---
    std::unordered_map<uint32_t, TermAccum> terms;
    std::vector<int64_t> docs_per_child(k, 0);
    std::vector<int64_t> tokens_per_child(k, 0);
    std::unordered_set<uint32_t> vocab;  // union of terms over D(c0)
    int64_t total_docs = 0;
    for (const auto& doc : examples) {
      int ci = child_index_of(doc.label);
      if (ci < 0) continue;
      ++docs_per_child[ci];
      ++total_docs;
      int64_t doc_len = text::TermVectorLength(doc.terms);
      for (const auto& tf : doc.terms) {
        vocab.insert(tf.tid);
        auto [it, _] = terms.try_emplace(tf.tid, k);
        ++it->second.df[ci];
        it->second.count[ci] += tf.freq;
        tokens_per_child[ci] += tf.freq;
        if (doc_len > 0) {
          double rate = static_cast<double>(tf.freq) / doc_len;
          it->second.rate_sum[ci] += rate;
          it->second.rate_sq_sum[ci] += rate * rate;
        }
      }
    }
    for (size_t i = 0; i < k; ++i) {
      if (docs_per_child[i] == 0) {
        return Status::FailedPrecondition(
            StrCat("no training documents under topic ",
                   tax.Name(children[i])));
      }
    }

    // --- feature selection by mutual information ---
    std::vector<std::pair<double, uint32_t>> ranked;
    ranked.reserve(terms.size());
    for (const auto& [tid, acc] : terms) {
      int32_t df_total = 0;
      for (int32_t d : acc.df) df_total += d;
      if (df_total < options_.min_document_frequency) continue;
      double score =
          options_.feature_selection == FeatureSelection::kFisher
              ? FisherIndex(acc, docs_per_child)
              : MutualInformation(acc.df, docs_per_child, total_docs);
      ranked.emplace_back(score, tid);
    }
    size_t keep = std::min<size_t>(options_.max_features_per_node,
                                   ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    ranked.resize(keep);

    // --- parameter estimation (Equation 1) ---
    // denominator(ci) = |vocab(c0)| + total tokens in D(ci).
    for (size_t i = 0; i < k; ++i) {
      model.logdenom[children[i]] =
          std::log(static_cast<double>(vocab.size()) + tokens_per_child[i]);
      model.logprior[children[i]] =
          std::log(static_cast<double>(docs_per_child[i]) / total_docs);
    }

    NodeModel node;
    node.cid = c0;
    for (const auto& [mi, tid] : ranked) {
      (void)mi;
      const TermAccum& acc = terms.at(tid);
      std::vector<ChildStat> stats;
      for (size_t i = 0; i < k; ++i) {
        if (acc.count[i] == 0) continue;  // keep the table sparse (§2.1.1)
        double logtheta = std::log(1.0 + acc.count[i]) -
                          model.logdenom[children[i]];
        stats.push_back(ChildStat{children[i], logtheta});
      }
      if (!stats.empty()) node.stats.emplace(tid, std::move(stats));
    }
    model.nodes.emplace(c0, std::move(node));
  }
  return model;
}

}  // namespace focus::classify
