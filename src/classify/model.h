// Hierarchical naive-Bayes model structures (§2.1.1).
//
// For every internal taxonomy node c0 the model holds, per feature term
// t in F(c0), the sparse vector of logtheta(ci, t) over children ci with
// non-zero training counts, plus per-child logprior(ci) and logdenom(ci).
// Terms absent from a child's statistics take the smoothed default
// theta = 1/denom(ci), i.e. logtheta = -logdenom(ci) (Equation 1 with a
// zero count).
#ifndef FOCUS_CLASSIFY_MODEL_H_
#define FOCUS_CLASSIFY_MODEL_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "taxonomy/taxonomy.h"
#include "text/document.h"

namespace focus::classify {

// A training example: a document attached to a leaf topic (the paper's
// D(c) example sets).
struct LabeledDocument {
  uint64_t did = 0;
  taxonomy::Cid label = 0;  // leaf topic
  text::TermVector terms;
};

// Statistics record for one (c0, t) probe result entry.
struct ChildStat {
  taxonomy::Cid kcid;
  double logtheta;
};

// Model at one internal node c0: the map (t -> [(ci, logtheta)]) restricted
// to the selected features F(c0).
struct NodeModel {
  taxonomy::Cid cid = 0;
  // Keys are exactly the effective feature set F(c0): every stored feature
  // has at least one child record.
  std::unordered_map<uint32_t, std::vector<ChildStat>> stats;

  bool IsFeature(uint32_t tid) const { return stats.contains(tid); }
};

struct ClassifierModel {
  // Indexed by cid. logprior(ci) = log Pr[ci | parent(ci)];
  // logdenom(ci) = log of Equation 1's denominator. Root entries are 0.
  std::vector<double> logprior;
  std::vector<double> logdenom;
  // Keyed by internal node cid.
  std::unordered_map<taxonomy::Cid, NodeModel> nodes;

  const NodeModel* NodeFor(taxonomy::Cid cid) const {
    auto it = nodes.find(cid);
    return it == nodes.end() ? nullptr : &it->second;
  }
};

// Posterior log-probabilities log Pr[c|d] for every taxonomy node.
struct ClassScores {
  std::vector<double> logp;  // indexed by cid; logp[root] == 0

  double Prob(taxonomy::Cid cid) const { return std::exp(logp[cid]); }

  // Soft-focus relevance (Equation 3): R(d) = sum over good topics of
  // Pr[c|d].
  double Relevance(const taxonomy::Taxonomy& tax) const {
    double r = 0;
    for (taxonomy::Cid c : tax.GoodTopics()) r += Prob(c);
    return r > 1.0 ? 1.0 : r;
  }

  // Highest-probability leaf (the paper's "best leaf class" used by the
  // hard focus rule).
  taxonomy::Cid BestLeaf(const taxonomy::Taxonomy& tax) const {
    taxonomy::Cid best = taxonomy::kRootCid;
    double best_lp = -std::numeric_limits<double>::infinity();
    for (taxonomy::Cid c = 0; c < tax.num_topics(); ++c) {
      if (!tax.IsLeaf(c)) continue;
      if (logp[c] > best_lp) {
        best_lp = logp[c];
        best = c;
      }
    }
    return best;
  }
};

}  // namespace focus::classify

#endif  // FOCUS_CLASSIFY_MODEL_H_
