// SingleProbe: document-at-a-time classification against the DB-resident
// statistics (Figure 2), in two access-path variants:
//
//  * kSqlRows — probes STAT_<c0> by tid, fetching each (kcid, logtheta)
//    row individually (the paper's "SQL" bar in Figure 8(a));
//  * kBlob    — probes BLOB by (c0, tid), fetching one packed record with
//    every child's statistic (the "BLOB" bar).
//
// Both produce scores identical to HierarchicalClassifier (tested); they
// differ only in I/O: one index descent plus k heap fetches vs one index
// descent plus one heap fetch, both random, per (document, node, term).
#ifndef FOCUS_CLASSIFY_SINGLE_PROBE_H_
#define FOCUS_CLASSIFY_SINGLE_PROBE_H_

#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "util/status.h"

namespace focus::classify {

class SingleProbeClassifier {
 public:
  enum class Variant { kSqlRows, kBlob };

  struct Stats {
    uint64_t probes = 0;          // index probes issued
    uint64_t rows_fetched = 0;    // heap records read
    double probe_seconds = 0;     // time in table probes
    double compute_seconds = 0;   // time in the scoring math
  };

  // `ref` provides the taxonomy/model for score propagation; `tables` are
  // the DB-resident statistics. Both must outlive the classifier.
  SingleProbeClassifier(const HierarchicalClassifier* ref,
                        const ClassifierTables* tables, Variant variant)
      : ref_(ref), tables_(tables), variant_(variant) {}

  Result<ClassScores> Classify(const text::TermVector& terms) const;

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  Status ProbeNode(taxonomy::Cid c0, const text::TermVector& terms,
                   std::vector<double>* out) const;

  const HierarchicalClassifier* ref_;
  const ClassifierTables* tables_;
  Variant variant_;
  mutable Stats stats_;
};

}  // namespace focus::classify

#endif  // FOCUS_CLASSIFY_SINGLE_PROBE_H_
