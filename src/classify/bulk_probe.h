// BulkProbe: batch classification as relational plans (Figure 3).
//
// For each internal node c0, the per-(document, child) log-likelihood
//   sum_{t in d ∩ F(c0)} freq(d,t) * logtheta(ci,t)
// is rewritten (as in §2.1.3) into
//   PARTIAL:  inner sort-merge join DOCUMENT ⋈_tid STAT_c0 (+ TAXONOMY for
//             logdenom), grouped by (did, kcid), summing
//             freq * (logtheta + logdenom)
//   DOCLEN:   DOCUMENT restricted to feature tids, grouped by did
//   COMPLETE: DOCLEN × children(c0) with -len * logdenom
//   final:    COMPLETE left outer join PARTIAL, lpr2 + coalesce(lpr1, 0)
// so every table is read sequentially — the I/O-conscious formulation whose
// ~10x win over SingleProbe Figure 8 reports.
#ifndef FOCUS_CLASSIFY_BULK_PROBE_H_
#define FOCUS_CLASSIFY_BULK_PROBE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "classify/db_tables.h"
#include "classify/hierarchical_classifier.h"
#include "sql/exec/analyze.h"
#include "sql/exec/dictionary.h"
#include "sql/exec/parallel.h"
#include "util/status.h"

namespace focus::classify {

class BulkProbeClassifier {
 public:
  struct Stats {
    double join_seconds = 0;      // merge-join + aggregation passes
    double finalize_seconds = 0;  // outer join, priors, normalization
    uint64_t partial_rows = 0;    // |PARTIAL| across nodes
    uint64_t output_rows = 0;     // |COMPLETE| across nodes (= |{ci}|·|{d}|)
  };

  BulkProbeClassifier(const HierarchicalClassifier* ref,
                      const ClassifierTables* tables)
      : ref_(ref), tables_(tables) {}

  // Selects the executor for the Figure 3 plans. Defaults to the
  // vectorized batch engine; the scalar Volcano path stays available for
  // comparison benchmarks and equivalence tests, kParallel runs the
  // batch plans morsel-parallel, and kEncoded dictionary-encodes the tid
  // join key (dictionary.h) so the per-node joins run on int32 codes with
  // the access path — index probe vs sort-merge — chosen per node by the
  // cost model (cost_model.h). All engines are bit-identical.
  void SetEngine(sql::ExecEngine engine) { engine_ = engine; }
  sql::ExecEngine engine() const { return engine_; }

  // Worker count for kParallel (including the calling thread; 1 = inline).
  // Takes effect on the next ClassifyAll. Default 4.
  void SetParallelThreads(int threads) {
    if (threads != parallel_threads_) {
      parallel_threads_ = threads;
      dispatcher_.reset();
    }
  }
  int parallel_threads() const { return parallel_threads_; }

  // Classifies every document materialized in `document` (did, tid, freq).
  // Returns scores keyed by did.
  //
  // Not safe for concurrent calls: the plan reads shared catalog tables
  // and accumulates into the mutable `stats_`. Callers that serve multiple
  // threads (crawl::BatchRelevanceEvaluator) must serialize externally.
  Result<std::unordered_map<uint64_t, ClassScores>> ClassifyAll(
      const sql::Table* document) const;

  // Like ClassifyAll, but records every operator of every per-node Figure 3
  // plan into `plan` (EXPLAIN ANALYZE). `plan` may be null, in which case
  // this is exactly ClassifyAll.
  Result<std::unordered_map<uint64_t, ClassScores>> ClassifyWithPlan(
      const sql::Table* document, sql::PlanStats* plan) const;

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  // Runs the Figure 3 plan at `c0` over the sorted-DOCUMENT temp,
  // accumulating per-document child log-likelihood vectors into `acc`
  // (keyed by did, indexed like tax.Children(c0)).
  Status BulkProbeNode(
      taxonomy::Cid c0, const sql::Schema& doc_schema,
      const std::vector<sql::Tuple>& doc_sorted,
      std::unordered_map<uint64_t, std::vector<double>>* acc) const;

  // The same plan on the vectorized engine, over the columnar
  // sorted-DOCUMENT temp. Non-null `tid_dict` selects the encoded plan:
  // doc_sorted's tid column then holds dictionary codes, STAT is encoded
  // against the same dictionary per node (dropping feature rows outside
  // the document vocabulary — a semi-join no inner join can observe), and
  // the cost model picks each join's access path.
  Status BulkProbeNodeVec(
      taxonomy::Cid c0, const sql::ColumnSet& doc_sorted,
      const sql::ColumnDictionary* tid_dict,
      std::unordered_map<uint64_t, std::vector<double>>* acc) const;

  Result<std::unordered_map<uint64_t, ClassScores>> ClassifyAllScalar(
      const sql::Table* document) const;
  Result<std::unordered_map<uint64_t, ClassScores>> ClassifyAllVectorized(
      const sql::Table* document) const;

  // Shared finalize: priors + score propagation per distinct did.
  Result<std::unordered_map<uint64_t, ClassScores>> Finalize(
      const std::vector<uint64_t>& dids,
      std::unordered_map<taxonomy::Cid,
                         std::unordered_map<uint64_t, std::vector<double>>>*
          node_acc) const;

  // The dispatcher for kParallel plans, created on first use (mutable:
  // ClassifyAll is const but lazily builds the worker pool).
  sql::MorselDispatcher* dispatcher() const;

  const HierarchicalClassifier* ref_;
  const ClassifierTables* tables_;
  sql::ExecEngine engine_ = sql::ExecEngine::kVectorized;
  int parallel_threads_ = 4;
  mutable std::unique_ptr<sql::MorselDispatcher> dispatcher_;
  mutable Stats stats_;
  // Non-null only inside ClassifyWithPlan.
  mutable sql::PlanStats* plan_ = nullptr;
};

}  // namespace focus::classify

#endif  // FOCUS_CLASSIFY_BULK_PROBE_H_
