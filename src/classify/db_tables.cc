#include "classify/db_tables.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace focus::classify {

using sql::IndexSpec;
using sql::Schema;
using sql::Tuple;
using sql::TypeId;
using sql::Value;

std::string EncodeBlobPayload(const std::vector<ChildStat>& stats) {
  std::string out;
  out.reserve(stats.size() * 10);
  for (const auto& cs : stats) {
    uint16_t kcid = cs.kcid;
    out.append(reinterpret_cast<const char*>(&kcid), sizeof(kcid));
    out.append(reinterpret_cast<const char*>(&cs.logtheta),
               sizeof(cs.logtheta));
  }
  return out;
}

Result<std::vector<ChildStat>> DecodeBlobPayload(std::string_view payload) {
  if (payload.size() % 10 != 0) {
    return Status::InvalidArgument(
        StrCat("blob payload size ", payload.size(), " not a multiple of 10"));
  }
  std::vector<ChildStat> stats;
  stats.reserve(payload.size() / 10);
  for (size_t off = 0; off < payload.size(); off += 10) {
    uint16_t kcid;
    double logtheta;
    std::memcpy(&kcid, payload.data() + off, sizeof(kcid));
    std::memcpy(&logtheta, payload.data() + off + 2, sizeof(logtheta));
    stats.push_back(ChildStat{kcid, logtheta});
  }
  return stats;
}

Result<ClassifierTables> BuildClassifierTables(sql::Catalog* catalog,
                                               const taxonomy::Taxonomy& tax,
                                               const ClassifierModel& model) {
  ClassifierTables tables;

  // TAXONOMY: one row per non-root topic, keyed by its parent.
  FOCUS_ASSIGN_OR_RETURN(
      tables.taxonomy,
      catalog->CreateTable("TAXONOMY",
                           Schema({{"pcid", TypeId::kInt32},
                                   {"kcid", TypeId::kInt32},
                                   {"logprior", TypeId::kDouble},
                                   {"logdenom", TypeId::kDouble},
                                   {"type", TypeId::kInt32},
                                   {"name", TypeId::kString}}),
                           {IndexSpec{"by_pcid", {0}, {}},
                            IndexSpec{"by_kcid", {1}, {}}}));
  for (taxonomy::Cid cid = 1; cid < tax.num_topics(); ++cid) {
    FOCUS_RETURN_IF_ERROR(
        tables.taxonomy
            ->Insert(Tuple({Value::Int32(tax.Parent(cid)), Value::Int32(cid),
                            Value::Double(model.logprior[cid]),
                            Value::Double(model.logdenom[cid]),
                            Value::Int32(static_cast<int>(tax.mark(cid))),
                            Value::Str(tax.Name(cid))}))
            .status());
  }

  // BLOB: one row per (internal node, feature term).
  FOCUS_ASSIGN_OR_RETURN(
      tables.blob,
      catalog->CreateTable("BLOB",
                           Schema({{"pcid", TypeId::kInt32},
                                   {"tid", TypeId::kInt64},
                                   {"payload", TypeId::kString}}),
                           {IndexSpec{"by_pcid_tid", {0, 1}, {16, 32}}}));

  // STAT_<c0>: rows in (tid, kcid) order so a heap scan is merge-ready.
  for (taxonomy::Cid c0 : tax.InternalPreorder()) {
    const NodeModel* node = model.NodeFor(c0);
    if (node == nullptr) {
      return Status::InvalidArgument(
          StrCat("model missing internal node ", c0));
    }
    FOCUS_ASSIGN_OR_RETURN(
        sql::Table * stat,
        catalog->CreateTable(StrCat("STAT_", c0),
                             Schema({{"kcid", TypeId::kInt32},
                                     {"tid", TypeId::kInt64},
                                     {"logtheta", TypeId::kDouble}}),
                             {IndexSpec{"by_tid", {1}, {32}}}));
    std::vector<uint32_t> tids;
    tids.reserve(node->stats.size());
    for (const auto& [tid, _] : node->stats) tids.push_back(tid);
    std::sort(tids.begin(), tids.end());
    for (uint32_t tid : tids) {
      const auto& stats = node->stats.at(tid);
      for (const auto& cs : stats) {
        FOCUS_RETURN_IF_ERROR(
            stat->Insert(Tuple({Value::Int32(cs.kcid),
                                Value::Int64(static_cast<int64_t>(tid)),
                                Value::Double(cs.logtheta)}))
                .status());
      }
      FOCUS_RETURN_IF_ERROR(
          tables.blob
              ->Insert(Tuple({Value::Int32(c0),
                              Value::Int64(static_cast<int64_t>(tid)),
                              Value::Str(EncodeBlobPayload(stats))}))
              .status());
    }
    tables.stat.emplace(c0, stat);
  }
  return tables;
}

Result<sql::Table*> CreateDocumentTable(sql::Catalog* catalog,
                                        const std::string& name) {
  return catalog->CreateTable(name,
                              Schema({{"did", TypeId::kInt64},
                                      {"tid", TypeId::kInt64},
                                      {"freq", TypeId::kInt32}}),
                              {IndexSpec{"by_did", {0}, {}}});
}

Status InsertDocument(sql::Table* document, uint64_t did,
                      const text::TermVector& terms) {
  for (const auto& tf : terms) {
    FOCUS_RETURN_IF_ERROR(
        document
            ->Insert(Tuple({Value::Int64(static_cast<int64_t>(did)),
                            Value::Int64(static_cast<int64_t>(tf.tid)),
                            Value::Int32(tf.freq)}))
            .status());
  }
  return Status::OK();
}

Result<text::TermVector> FetchDocument(const sql::Table* document,
                                       uint64_t did) {
  std::vector<storage::Rid> rids;
  FOCUS_RETURN_IF_ERROR(document->IndexLookup(
      0, {Value::Int64(static_cast<int64_t>(did))}, &rids));
  text::TermVector terms;
  terms.reserve(rids.size());
  Tuple row;
  for (const auto& rid : rids) {
    FOCUS_RETURN_IF_ERROR(document->Get(rid, &row));
    terms.push_back(
        {static_cast<uint32_t>(row.Get(1).AsInt64()), row.Get(2).AsInt32()});
  }
  std::sort(terms.begin(), terms.end(),
            [](const text::TermFreq& a, const text::TermFreq& b) {
              return a.tid < b.tid;
            });
  return terms;
}

}  // namespace focus::classify
