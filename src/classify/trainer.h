// Classifier training (§2.1.1): feature selection, parameter estimation
// (Equation 1) and prior estimation, per internal taxonomy node.
#ifndef FOCUS_CLASSIFY_TRAINER_H_
#define FOCUS_CLASSIFY_TRAINER_H_

#include <vector>

#include "classify/model.h"
#include "taxonomy/taxonomy.h"
#include "util/status.h"

namespace focus::classify {

// Feature ranking criterion (§2.1.1 cites feature selection "studied in
// detail elsewhere" — the companion VLDB-J paper uses Fisher's
// discriminant; mutual information is the common alternative).
enum class FeatureSelection {
  kMutualInformation,
  kFisher,
};

struct TrainerOptions {
  // Per internal node, keep at most this many terms, ranked by the chosen
  // criterion.
  int max_features_per_node = 600;
  FeatureSelection feature_selection = FeatureSelection::kMutualInformation;
  // Terms must appear in at least this many training documents of the node
  // to be feature candidates.
  int min_document_frequency = 2;
};

class Trainer {
 public:
  explicit Trainer(TrainerOptions options = {}) : options_(options) {}

  // Trains a model for `tax` from leaf-labelled example documents. Every
  // internal node must have at least one training document under each
  // child (otherwise that child can never be predicted; an error is
  // returned naming it).
  Result<ClassifierModel> Train(
      const taxonomy::Taxonomy& tax,
      const std::vector<LabeledDocument>& examples) const;

 private:
  TrainerOptions options_;
};

}  // namespace focus::classify

#endif  // FOCUS_CLASSIFY_TRAINER_H_
