// TF-IDF inverted index over a document corpus.
//
// Implements the paper's §3.6 outlook: "we envisage that a standard
// search over the corpus ... [is] likely to be much more satisfying in
// the scope of the focused corpus". The focused crawler materializes a
// small topical corpus; this index serves keyword queries over it with
// cosine-normalized TF-IDF ranking.
#ifndef FOCUS_TEXT_CORPUS_INDEX_H_
#define FOCUS_TEXT_CORPUS_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/document.h"
#include "util/status.h"

namespace focus::text {

class CorpusIndex {
 public:
  struct SearchResult {
    uint64_t did = 0;
    double score = 0;
  };

  // Adds a document. AlreadyExists if `did` was indexed before.
  Status AddDocument(uint64_t did, const TermVector& terms);

  // Top-k documents by cosine similarity between the TF-IDF vectors of
  // the query and each document. Ties break on did for determinism.
  std::vector<SearchResult> Search(const TermVector& query, int k) const;
  std::vector<SearchResult> Search(const std::vector<std::string>& tokens,
                                   int k) const {
    return Search(BuildTermVector(tokens), k);
  }

  size_t num_documents() const { return doc_norms_.size(); }
  size_t num_terms() const { return postings_.size(); }

 private:
  struct Posting {
    uint64_t did;
    int32_t freq;
  };

  // idf(t) = log(1 + N / df(t)); tf weight = 1 + log(freq).
  double Idf(uint32_t tid) const;

  std::unordered_map<uint32_t, std::vector<Posting>> postings_;
  // did -> Euclidean norm of its TF-IDF vector (computed lazily because
  // idf changes as documents arrive; invalidated on AddDocument).
  mutable std::unordered_map<uint64_t, double> doc_norms_;
  std::unordered_map<uint64_t, TermVector> docs_;
  mutable bool norms_dirty_ = true;
};

}  // namespace focus::text

#endif  // FOCUS_TEXT_CORPUS_INDEX_H_
