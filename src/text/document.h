// Bag-of-words documents.
//
// Terms are identified by 32-bit hashes (the paper's tid representation,
// §2.1.3); documents by 64-bit ids (did). A TermVector is the sparse
// (tid, freq) form sorted by tid — the in-memory analogue of the DOCUMENT
// table's (did, tid, freq) rows.
#ifndef FOCUS_TEXT_DOCUMENT_H_
#define FOCUS_TEXT_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace focus::text {

struct TermFreq {
  uint32_t tid;
  int32_t freq;

  bool operator==(const TermFreq&) const = default;
};

// Sparse term-frequency vector, sorted ascending by tid.
using TermVector = std::vector<TermFreq>;

// Builds a TermVector from raw tokens (hashing each token to its tid).
TermVector BuildTermVector(const std::vector<std::string>& tokens);

// Total token count n(d) of a term vector.
int64_t TermVectorLength(const TermVector& terms);

struct Document {
  uint64_t did = 0;
  TermVector terms;

  int64_t length() const { return TermVectorLength(terms); }
};

}  // namespace focus::text

#endif  // FOCUS_TEXT_DOCUMENT_H_
