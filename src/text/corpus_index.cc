#include "text/corpus_index.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace focus::text {

Status CorpusIndex::AddDocument(uint64_t did, const TermVector& terms) {
  if (docs_.contains(did)) {
    return Status::AlreadyExists(StrCat("document ", did));
  }
  docs_.emplace(did, terms);
  for (const auto& tf : terms) {
    postings_[tf.tid].push_back(Posting{did, tf.freq});
  }
  norms_dirty_ = true;
  return Status::OK();
}

double CorpusIndex::Idf(uint32_t tid) const {
  auto it = postings_.find(tid);
  if (it == postings_.end()) return 0.0;
  return std::log(1.0 + static_cast<double>(docs_.size()) /
                            it->second.size());
}

std::vector<CorpusIndex::SearchResult> CorpusIndex::Search(
    const TermVector& query, int k) const {
  if (norms_dirty_) {
    doc_norms_.clear();
    for (const auto& [did, terms] : docs_) {
      double norm_sq = 0;
      for (const auto& tf : terms) {
        double w = (1.0 + std::log(tf.freq)) * Idf(tf.tid);
        norm_sq += w * w;
      }
      doc_norms_[did] = std::sqrt(norm_sq);
    }
    norms_dirty_ = false;
  }

  std::unordered_map<uint64_t, double> dot;
  double query_norm_sq = 0;
  for (const auto& qt : query) {
    double idf = Idf(qt.tid);
    if (idf == 0.0) continue;
    double qw = (1.0 + std::log(qt.freq)) * idf;
    query_norm_sq += qw * qw;
    auto it = postings_.find(qt.tid);
    if (it == postings_.end()) continue;
    for (const Posting& p : it->second) {
      double dw = (1.0 + std::log(p.freq)) * idf;
      dot[p.did] += qw * dw;
    }
  }
  double query_norm = std::sqrt(query_norm_sq);

  std::vector<SearchResult> results;
  results.reserve(dot.size());
  for (const auto& [did, d] : dot) {
    double denom = query_norm * doc_norms_.at(did);
    if (denom <= 0) continue;
    results.push_back(SearchResult{did, d / denom});
  }
  std::sort(results.begin(), results.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.did < b.did;
            });
  if (static_cast<int>(results.size()) > k) results.resize(k);
  return results;
}

}  // namespace focus::text
