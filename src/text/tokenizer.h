// Tokenization: lowercased alphanumeric tokens with stopword removal.
#ifndef FOCUS_TEXT_TOKENIZER_H_
#define FOCUS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace focus::text {

struct TokenizerOptions {
  // Tokens shorter than this are dropped.
  int min_token_length = 2;
  // Drop common English stopwords.
  bool remove_stopwords = true;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  // Splits `text` into lowercase tokens (letters and digits; everything
  // else is a separator).
  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  TokenizerOptions options_;
};

// True if `token` (already lowercase) is in the built-in stopword list.
bool IsStopword(std::string_view token);

}  // namespace focus::text

#endif  // FOCUS_TEXT_TOKENIZER_H_
