#include "text/tokenizer.h"

#include <array>
#include <cctype>

namespace focus::text {

namespace {
// A compact stopword list; enough to keep function words out of the term
// statistics (the paper's feature selection would down-weight them anyway).
constexpr std::array<std::string_view, 50> kStopwords = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but", "by",
    "for",  "from", "had",  "has",  "have", "he",   "her",  "his", "if",
    "in",   "is",   "it",   "its",  "not",  "of",   "on",   "or",  "she",
    "that", "the",  "their", "them", "then", "there", "they", "this",
    "to",   "was",  "we",   "were", "what", "when", "which", "who", "will",
    "with", "you",  "your", "i",    "do",   "so"};
}  // namespace

bool IsStopword(std::string_view token) {
  for (std::string_view w : kStopwords) {
    if (w == token) return true;
  }
  return false;
}

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (static_cast<int>(current.size()) >= options_.min_token_length &&
        !(options_.remove_stopwords && IsStopword(current))) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char c : text) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) || c == '_') {
      current.push_back(
          static_cast<char>(std::tolower(uc)));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace focus::text
