#include "text/document.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"

namespace focus::text {

TermVector BuildTermVector(const std::vector<std::string>& tokens) {
  std::unordered_map<uint32_t, int32_t> counts;
  counts.reserve(tokens.size());
  for (const auto& tok : tokens) ++counts[TermId(tok)];
  TermVector terms;
  terms.reserve(counts.size());
  for (auto [tid, freq] : counts) terms.push_back({tid, freq});
  std::sort(terms.begin(), terms.end(),
            [](const TermFreq& a, const TermFreq& b) { return a.tid < b.tid; });
  return terms;
}

int64_t TermVectorLength(const TermVector& terms) {
  int64_t total = 0;
  for (const auto& t : terms) total += t.freq;
  return total;
}

}  // namespace focus::text
