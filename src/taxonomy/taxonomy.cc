#include "taxonomy/taxonomy.h"

#include <limits>

#include "util/string_util.h"

namespace focus::taxonomy {

const char* MarkName(Mark mark) {
  switch (mark) {
    case Mark::kNull:
      return "null";
    case Mark::kGood:
      return "good";
    case Mark::kPath:
      return "path";
    case Mark::kSubsumed:
      return "subsumed";
  }
  return "?";
}

Taxonomy::Taxonomy() {
  nodes_.push_back(Node{"root", kRootCid, {}, Mark::kNull});
}

Result<Cid> Taxonomy::AddTopic(Cid parent, std::string name) {
  if (!IsValidCid(parent)) {
    return Status::InvalidArgument(StrCat("invalid parent cid ", parent));
  }
  if (nodes_.size() >= std::numeric_limits<Cid>::max()) {
    return Status::ResourceExhausted("taxonomy full (16-bit cids)");
  }
  if (FindByName(name).ok()) {
    return Status::AlreadyExists(StrCat("topic ", name));
  }
  Cid cid = static_cast<Cid>(nodes_.size());
  nodes_.push_back(Node{std::move(name), parent, {}, Mark::kNull});
  nodes_[parent].children.push_back(cid);
  return cid;
}

Result<Cid> Taxonomy::FindByName(std::string_view name) const {
  for (Cid cid = 0; cid < nodes_.size(); ++cid) {
    if (nodes_[cid].name == name) return cid;
  }
  return Status::NotFound(StrCat("topic ", name));
}

bool Taxonomy::IsAncestor(Cid ancestor, Cid cid, bool or_self) const {
  if (ancestor == cid) return or_self;
  while (cid != kRootCid) {
    cid = nodes_[cid].parent;
    if (cid == ancestor) return true;
  }
  return false;
}

std::vector<Cid> Taxonomy::PathFromRoot(Cid cid) const {
  std::vector<Cid> path;
  for (Cid c = cid;; c = nodes_[c].parent) {
    path.push_back(c);
    if (c == kRootCid) break;
  }
  return {path.rbegin(), path.rend()};
}

std::vector<Cid> Taxonomy::LeavesUnder(Cid cid) const {
  std::vector<Cid> leaves;
  std::vector<Cid> stack = {cid};
  while (!stack.empty()) {
    Cid c = stack.back();
    stack.pop_back();
    if (IsLeaf(c)) {
      leaves.push_back(c);
    } else {
      for (Cid child : nodes_[c].children) stack.push_back(child);
    }
  }
  return leaves;
}

std::vector<Cid> Taxonomy::InternalPreorder() const {
  std::vector<Cid> order;
  std::vector<Cid> stack = {kRootCid};
  while (!stack.empty()) {
    Cid c = stack.back();
    stack.pop_back();
    if (IsLeaf(c)) continue;
    order.push_back(c);
    const auto& kids = nodes_[c].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

Status Taxonomy::MarkGood(Cid cid) {
  if (!IsValidCid(cid)) {
    return Status::InvalidArgument(StrCat("invalid cid ", cid));
  }
  // Paper invariant: no good topic is an ancestor of another good topic.
  for (Cid other = 0; other < nodes_.size(); ++other) {
    if (nodes_[other].mark != Mark::kGood) continue;
    if (IsAncestor(other, cid, /*or_self=*/true) ||
        IsAncestor(cid, other, /*or_self=*/false)) {
      return Status::FailedPrecondition(
          StrCat("topic ", Name(cid), " conflicts with good topic ",
                 Name(other)));
    }
  }
  nodes_[cid].mark = Mark::kGood;
  RefreshDerivedMarks();
  return Status::OK();
}

void Taxonomy::ClearMarks() {
  for (auto& n : nodes_) n.mark = Mark::kNull;
}

void Taxonomy::RefreshDerivedMarks() {
  // Recompute path/subsumed from the set of good topics.
  for (auto& n : nodes_) {
    if (n.mark != Mark::kGood) n.mark = Mark::kNull;
  }
  for (Cid cid = 0; cid < nodes_.size(); ++cid) {
    if (nodes_[cid].mark != Mark::kGood) continue;
    // Ancestors become path topics.
    for (Cid c = nodes_[cid].parent;; c = nodes_[c].parent) {
      nodes_[c].mark = Mark::kPath;
      if (c == kRootCid) break;
    }
    // Descendants become subsumed.
    std::vector<Cid> stack(nodes_[cid].children);
    while (!stack.empty()) {
      Cid c = stack.back();
      stack.pop_back();
      nodes_[c].mark = Mark::kSubsumed;
      for (Cid child : nodes_[c].children) stack.push_back(child);
    }
  }
}

bool Taxonomy::IsGoodOrSubsumed(Cid cid) const {
  return nodes_[cid].mark == Mark::kGood ||
         nodes_[cid].mark == Mark::kSubsumed;
}

std::vector<Cid> Taxonomy::GoodTopics() const {
  std::vector<Cid> good;
  for (Cid cid = 0; cid < nodes_.size(); ++cid) {
    if (nodes_[cid].mark == Mark::kGood) good.push_back(cid);
  }
  return good;
}

}  // namespace focus::taxonomy
