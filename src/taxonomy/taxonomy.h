// The hierarchical topic directory C (§1.1).
//
// A tree of topics with 16-bit class ids (cid). The user marks a subset of
// topics "good" (C*); ancestors of good topics become "path" topics and
// descendants "subsumed". The invariant from the paper holds by
// construction: no good topic is an ancestor of another good topic.
#ifndef FOCUS_TAXONOMY_TAXONOMY_H_
#define FOCUS_TAXONOMY_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace focus::taxonomy {

using Cid = uint16_t;
inline constexpr Cid kRootCid = 0;

enum class Mark : uint8_t { kNull = 0, kGood, kPath, kSubsumed };

const char* MarkName(Mark mark);

class Taxonomy {
 public:
  // Constructs a taxonomy containing only the root topic.
  Taxonomy();

  // Adds a child topic under `parent`. Names must be unique.
  Result<Cid> AddTopic(Cid parent, std::string name);

  int num_topics() const { return static_cast<int>(nodes_.size()); }
  bool IsValidCid(Cid cid) const { return cid < nodes_.size(); }

  const std::string& Name(Cid cid) const { return nodes_[cid].name; }
  Cid Parent(Cid cid) const { return nodes_[cid].parent; }
  const std::vector<Cid>& Children(Cid cid) const {
    return nodes_[cid].children;
  }
  bool IsLeaf(Cid cid) const { return nodes_[cid].children.empty(); }
  bool IsRoot(Cid cid) const { return cid == kRootCid; }

  // Cid by exact name, or NotFound.
  Result<Cid> FindByName(std::string_view name) const;

  // True if `ancestor` is a proper ancestor of `cid` (or equal when
  // `or_self`).
  bool IsAncestor(Cid ancestor, Cid cid, bool or_self = false) const;

  // cids from the root down to `cid`, inclusive.
  std::vector<Cid> PathFromRoot(Cid cid) const;

  // All leaves under `cid` (including `cid` itself when it is a leaf).
  std::vector<Cid> LeavesUnder(Cid cid) const;

  // Internal (non-leaf) topics in preorder from the root — the
  // "topological order" in which BulkProbe is evaluated (Figure 3).
  std::vector<Cid> InternalPreorder() const;

  // --- good/path/subsumed marking (§1.1, §2.1.2) ---

  // Marks `cid` good. Fails if an ancestor or descendant is already good.
  Status MarkGood(Cid cid);
  // Clears all marks back to kNull.
  void ClearMarks();
  Mark mark(Cid cid) const { return nodes_[cid].mark; }
  bool IsGood(Cid cid) const { return nodes_[cid].mark == Mark::kGood; }
  // True if `cid` or any ancestor is good — pages classified here count as
  // relevant under the soft focus rule.
  bool IsGoodOrSubsumed(Cid cid) const;
  std::vector<Cid> GoodTopics() const;

 private:
  struct Node {
    std::string name;
    Cid parent;
    std::vector<Cid> children;
    Mark mark = Mark::kNull;
  };

  void RefreshDerivedMarks();

  std::vector<Node> nodes_;
};

}  // namespace focus::taxonomy

#endif  // FOCUS_TAXONOMY_TAXONOMY_H_
